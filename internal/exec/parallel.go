package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dict"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/store"
)

// This file implements morsel-driven intra-query parallelism (after Leis et
// al., "Morsel-Driven Parallelism", SIGMOD 2014): a parallelism-eligible
// pipeline — a scan→probe/filter/project chain annotated by plan.Lower with
// its partitionable source — is executed by splitting the source scan's
// contiguous index range into fixed-size morsels and running the *entire*
// chain over each morsel on a bounded worker pool. Workers claim morsels
// from a shared atomic counter (dynamic load balancing), accumulate their
// own Cout/Work/Scanned counters, and buffer their output per morsel; the
// driver then merges buffers and counters in morsel order.
//
// Determinism argument: every operator in an eligible pipeline is stateless
// per row, every counter increment is per-tuple (independent of batch
// boundaries), and the morsels partition the source range contiguously — so
// concatenating per-morsel outputs in morsel order reproduces the serial
// operator stream row for row, and summing per-morsel counters in morsel
// order reproduces the serial accounting exactly (all increments are
// integer-valued, far below the 2^53 float64 exactness bound). Rows, row
// order, Cout, Work and Scanned are therefore bit-identical at every worker
// count, which the golden suite asserts at Parallelism ∈ {1, 2, 8}.

// defaultMorselTriples is the source-range morsel size when
// Options.MorselSize is zero.
const defaultMorselTriples = 4096

// morselSize returns the effective morsel size for this run.
func (ex *executor) morselSize() int {
	if ex.opts.MorselSize > 0 {
		return ex.opts.MorselSize
	}
	return defaultMorselTriples
}

// morselize splits n items into contiguous [lo, hi) ranges of at most size
// items. nil when n == 0.
func morselize(n, size int) [][2]int {
	if n <= 0 {
		return nil
	}
	out := make([][2]int, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// execCounters is the per-morsel accounting a worker hands back for the
// in-order merge.
type execCounters struct {
	cout float64
	work float64
	scan int
	kern KernelStats
}

// workerExecutor clones the run's executor for one morsel: same store,
// context and options (with further nesting disabled), fresh counters.
func (ex *executor) workerExecutor() *executor {
	opts := ex.opts
	opts.Parallelism = 1
	return &executor{st: ex.st, ctx: ex.ctx, opts: opts}
}

// counters snapshots an executor's accounting.
func (ex *executor) counters() execCounters {
	return execCounters{cout: ex.cout, work: ex.work, scan: ex.scan, kern: ex.kern}
}

// mergeRowBuffers concatenates per-morsel output buffers in morsel order —
// the one merge used by every parallel operator, so the order guarantee
// cannot drift between them.
func mergeRowBuffers(outs [][][]dict.ID) [][]dict.ID {
	total := 0
	for _, rows := range outs {
		total += len(rows)
	}
	merged := make([][]dict.ID, 0, total)
	for _, rows := range outs {
		merged = append(merged, rows...)
	}
	return merged
}

// mergeMorsels folds per-morsel counters into the run's accounting in
// morsel order and records the schedule (morsel count, peak worker count).
// Under tracing it also attaches the per-morsel breakdown — counter shares
// from the workers plus the timing/worker-id schedule the preceding
// runMorsels call recorded — to the span whose next() frame is executing.
func (ex *executor) mergeMorsels(counters []execCounters, workers int) {
	for _, c := range counters {
		ex.cout += c.cout
		ex.work += c.work
		ex.scan += c.scan
		ex.kern.add(c.kern)
	}
	ex.morsels += len(counters)
	if workers > ex.workers {
		ex.workers = workers
	}
	if tr := ex.trace; tr != nil && tr.cur != nil {
		for i, c := range counters {
			m := obs.MorselStats{Index: i, Cout: c.cout, Work: c.work, Scanned: int64(c.scan)}
			if i < len(tr.morselNs) {
				m.WallNs = tr.morselNs[i]
				m.Worker = tr.morselWorker[i]
			}
			tr.cur.Morsels = append(tr.cur.Morsels, m)
		}
		if workers > tr.cur.Workers {
			tr.cur.Workers = workers
		}
		tr.morselNs, tr.morselWorker = nil, nil
	}
}

// runMorsels executes fn(i) for every morsel index 0..n-1 across up to
// Parallelism workers: the calling goroutine plus extra workers, each of
// which requires one token TryAcquire'd from Options.Pool when a pool is
// configured (and is skipped, never waited for, when the pool is dry — the
// query always progresses on its own goroutine). fn must be safe to call
// concurrently for distinct indexes and must store its own output; the
// first error stops all workers after their current morsel. Returns the
// worker count used.
func (ex *executor) runMorsels(n int, fn func(i int) error) (int, error) {
	want := ex.parallelism()
	if want > n {
		want = n
	}
	extra := want - 1
	if pool := ex.opts.Pool; pool != nil {
		got := 0
		for got < extra && pool.TryAcquire() {
			got++
		}
		defer func() {
			for i := 0; i < got; i++ {
				pool.Release()
			}
		}()
		extra = got
	}
	tr := ex.trace
	if tr != nil {
		// Per-morsel schedule for the trace: wall time and worker id,
		// indexed by morsel, consumed by the matching mergeMorsels call.
		// The checks are per-morsel, never per-tuple, and nothing here
		// runs when tracing is off.
		tr.morselNs = make([]int64, n)
		tr.morselWorker = make([]int, n)
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	worker := func(id int) {
		for !failed.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			var start time.Time
			if tr != nil {
				start = time.Now()
			}
			err := fn(i)
			if tr != nil {
				tr.morselNs[i] = time.Since(start).Nanoseconds()
				tr.morselWorker[i] = id
			}
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				failed.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(id)
		}(i + 1)
	}
	worker(0)
	wg.Wait()
	return extra + 1, firstErr
}

// --- Sort cancellation -------------------------------------------------------

// sortAbort carries a cancellation error out of a sort comparator via
// panic; recoverSortAbort translates it back into an error return.
type sortAbort struct{ err error }

// lessWithCancel wraps a sort comparator so the run's context is polled
// every cancelCheckRows comparisons; a pending cancellation unwinds the
// sort through a sortAbort panic, caught by recoverSortAbort.
func (ex *executor) lessWithCancel(less func(i, j int) bool) func(i, j int) bool {
	calls := 0
	return func(i, j int) bool {
		calls++
		if calls%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				panic(sortAbort{err})
			}
		}
		return less(i, j)
	}
}

// recoverSortAbort converts a sortAbort panic into *err; other panics
// propagate.
func recoverSortAbort(err *error) {
	if r := recover(); r != nil {
		if sa, ok := r.(sortAbort); ok {
			*err = sa.err
			return
		}
		panic(r)
	}
}

// --- Parallel pipeline operator ----------------------------------------------

// pipeStage is one precompiled operator of an eligible pipeline, bottom
// (source scan) first. Everything here is immutable after construction and
// shared read-only by all workers; per-morsel operator structs are thin
// wrappers binding a stage to a worker executor and a morsel cursor.
type pipeStage struct {
	node    *plan.PhysNode
	outVars []sparql.Var
	scan    scanPlan         // PhysIndexScan
	probe   probePlan        // PhysIndexProbe
	filters []compiledFilter // PhysFilter
	cols    []int            // PhysProject
}

// parallelOp executes a parallelism-eligible pipeline morsel by morsel. It
// is a pipeline breaker from the scheduling standpoint — output is fully
// buffered before the first batch is emitted — but rows, order and
// accounting are bit-identical to the serial streaming chain (see the
// determinism argument at the top of this file).
type parallelOp struct {
	ex     *executor
	source *plan.CompiledPattern
	stages []pipeStage
	nparts int // morsel count fixed at build time (deterministic)
	ran    bool
	rows   [][]dict.ID
	pos    int
}

// newParallelOp precompiles the pipeline rooted at top. When the source
// range is too small to split it falls back to the serial operator chain —
// same rows, same accounting, no coordination overhead. Compile errors
// (e.g. a filter naming an unbound variable) surface here, exactly where
// the serial build would raise them.
func (ex *executor) newParallelOp(top *plan.PhysNode) (operator, error) {
	src := top.ParallelSource.Leaf
	stages, err := compilePipeline(top)
	if err != nil {
		return nil, err
	}
	parts := ex.pipelineMorsels(src, len(stages))
	if parts <= 1 {
		return ex.buildNode(top)
	}
	return &parallelOp{ex: ex, source: src, stages: stages, nparts: parts}, nil
}

// pipelineMorsels decides how many morsels to split a pipeline's source
// range into. Large ranges split at MorselSize. A small range driving a
// probe chain still splits — into roughly two morsels per worker — because
// index probes multiply per-row work far beyond the source size (the
// drill-down shape: a handful of vendors each probing hundreds of offers).
// A small bare scan stays serial; splitting it would only pay coordination
// for row extraction. The split depends only on the store and the run's
// options, never on scheduling, so the schedule is deterministic too.
func (ex *executor) pipelineMorsels(src *plan.CompiledPattern, stages int) int {
	total := ex.st.Count(src.Pat)
	size := ex.morselSize()
	if total < size*ex.parallelism() {
		if stages == 1 {
			return 1
		}
		size = (total + 2*ex.parallelism() - 1) / (2 * ex.parallelism())
		if size < 1 {
			size = 1
		}
	}
	return len(morselize(total, size))
}

// compilePipeline walks the chain from top down to its source scan and
// precompiles each stage bottom-up: schemas, scan/probe extraction plans,
// filters and projection columns are computed once and shared by all
// workers.
func compilePipeline(top *plan.PhysNode) ([]pipeStage, error) {
	var chain []*plan.PhysNode
	for n := top; ; n = n.Left {
		chain = append(chain, n)
		if n.Op == plan.PhysIndexScan {
			break
		}
	}
	// Reverse: source first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	stages := make([]pipeStage, len(chain))
	var childVars []sparql.Var
	for i, n := range chain {
		st := pipeStage{node: n}
		switch n.Op {
		case plan.PhysIndexScan:
			st.outVars = n.Leaf.Vars()
			st.scan = buildScanPlan(n.Leaf, st.outVars)
		case plan.PhysIndexProbe:
			st.probe = buildProbePlan(childVars, n.Leaf)
			st.outVars = st.probe.outVars
		case plan.PhysFilter:
			cs, err := compileFilters(childVars, n.Filters)
			if err != nil {
				return nil, err
			}
			st.filters = cs
			st.outVars = childVars
		case plan.PhysProject:
			cols := make([]int, len(n.Vars))
			for j, v := range n.Vars {
				ci := varIndexOf(childVars, v)
				if ci < 0 {
					return nil, fmt.Errorf("exec: SELECT of unbound variable ?%s", v)
				}
				cols[j] = ci
			}
			st.cols = cols
			st.outVars = n.Vars
		default:
			return nil, fmt.Errorf("exec: operator %v inside a parallel pipeline", n.Op)
		}
		stages[i] = st
		childVars = st.outVars
	}
	return stages, nil
}

// buildMorselChain instantiates the pipeline's operator chain for one
// morsel: the shared precompiled stages bound to a worker executor and the
// morsel's cursor.
func buildMorselChain(wex *executor, stages []pipeStage, cursor *store.Scan) operator {
	var op operator
	for i := range stages {
		st := &stages[i]
		switch st.node.Op {
		case plan.PhysIndexScan:
			op = &scanOp{ex: wex, outVars: st.outVars, cursor: cursor, plan: st.scan}
		case plan.PhysIndexProbe:
			op = &probeOp{ex: wex, child: op, plan: st.probe}
		case plan.PhysFilter:
			op = &filterOp{ex: wex, child: op, filters: st.filters}
		case plan.PhysProject:
			op = &projectOp{child: op, outVars: st.outVars, cols: st.cols}
		}
	}
	return op
}

func (op *parallelOp) vars() []sparql.Var { return op.stages[len(op.stages)-1].outVars }

func (op *parallelOp) next() ([][]dict.ID, error) {
	if !op.ran {
		op.ran = true
		if err := op.run(); err != nil {
			return nil, err
		}
	}
	if op.pos >= len(op.rows) {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > len(op.rows) {
		end = len(op.rows)
	}
	batch := op.rows[op.pos:end]
	op.pos = end
	return batch, nil
}

// run fans the source morsels across the worker pool and merges per-morsel
// outputs and counters in morsel order.
func (op *parallelOp) run() error {
	ex := op.ex
	parts := ex.st.ScanPartitions(op.source.Pat, op.nparts)
	if parts == nil {
		return nil
	}
	outs := make([][][]dict.ID, len(parts))
	counters := make([]execCounters, len(parts))
	workers, err := ex.runMorsels(len(parts), func(i int) error {
		wex := ex.workerExecutor()
		chain := buildMorselChain(wex, op.stages, parts[i])
		var rows [][]dict.ID
		for {
			batch, err := chain.next()
			if err != nil {
				return err
			}
			if batch == nil {
				break
			}
			rows = append(rows, batch...)
		}
		outs[i] = rows
		counters[i] = wex.counters()
		return nil
	})
	if err != nil {
		return err
	}
	ex.mergeMorsels(counters, workers)
	op.rows = mergeRowBuffers(outs)
	return nil
}
