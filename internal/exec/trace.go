package exec

import (
	"time"

	"repro/internal/dict"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sparql"
)

// This file threads the obs execution-trace layer through both engines.
// Tracing is strictly opt-in: when Options.Trace is nil the build paths
// never touch this file, so the disabled hot path is byte-for-byte the
// untraced operator tree (no wrapper operators, no per-tuple branches, no
// allocations — asserted by the zero-overhead tests).
//
// When a collector is set, build()/colBuild() wrap every operator they
// construct in a traced wrapper that records, per next() call, the wall
// time inside the call and the deltas of the run's Cout/Work/Scanned
// counters across it. Every counter increment of both engines happens
// inside some operator's next() frame, so the deltas are inclusive of the
// operator's subtree and the root span's totals equal the Result's
// accounting exactly (all increments are per-tuple integers below the
// 2^53 float64 exactness bound). obs.Finalize later derives per-operator
// exclusive values.
//
// Parallel pipelines get one span: the morsel workers run untraced clones
// (workerExecutor never copies the trace), their counters flow back
// through mergeMorsels inside the parallel operator's next() frame, and
// mergeMorsels attaches the per-morsel breakdown (worker id, wall time,
// counter shares) to the span currently on the trace stack.

// traceState is the per-run tracing context: the span tree under
// construction, the span whose next() frame is currently executing (the
// attachment point for per-morsel stats), and the per-morsel timing the
// last runMorsels loop recorded for the matching mergeMorsels call.
type traceState struct {
	root *obs.Span
	cur  *obs.Span

	morselNs     []int64
	morselWorker []int
}

// openSpan creates the span for physical node n under the current parent
// (or as the root) and makes it current. The caller must restore the
// previous current span when its subtree is built.
func (ts *traceState) openSpan(n *plan.PhysNode) *obs.Span {
	s := &obs.Span{Op: n.Op.String(), Detail: n.Describe()}
	if ts.cur == nil {
		ts.root = s
	} else {
		ts.cur.Children = append(ts.cur.Children, s)
	}
	ts.cur = s
	return s
}

// buildTraced is build() with tracing on: it opens a span mirroring the
// physical node, builds the operator (children nest under the span), and
// wraps the result so execution records into it. A parallel pipeline
// keeps a single span — its chain runs per morsel on untraced workers.
func (ex *executor) buildTraced(n *plan.PhysNode) (operator, error) {
	ts := ex.trace
	parent := ts.cur
	span := ts.openSpan(n)
	defer func() { ts.cur = parent }()
	var op operator
	var err error
	if ex.parallelism() > 1 && n.ParallelSource != nil {
		op, err = ex.newParallelOp(n)
	} else {
		op, err = ex.buildNode(n)
	}
	if err != nil {
		return nil, err
	}
	return &tracedOp{ex: ex, child: op, span: span}, nil
}

// colBuildTraced is colBuild() with tracing on (see buildTraced).
func (ex *executor) colBuildTraced(n *plan.PhysNode) (colOperator, error) {
	ts := ex.trace
	parent := ts.cur
	span := ts.openSpan(n)
	defer func() { ts.cur = parent }()
	var op colOperator
	var err error
	if ex.parallelism() > 1 && n.ParallelSource != nil {
		op, err = ex.newColParallelOp(n)
	} else {
		op, err = ex.colBuildNode(n)
	}
	if err != nil {
		return nil, err
	}
	return &tracedColOp{ex: ex, child: op, span: span}, nil
}

// tracedOp wraps a row operator: each next() call is timed, the run's
// counter deltas across it are credited to the span (inclusive of nested
// wrapped children), and the span becomes current for the duration so
// morsel loops running inside the frame attach their breakdown here.
type tracedOp struct {
	ex    *executor
	child operator
	span  *obs.Span
}

func (op *tracedOp) vars() []sparql.Var { return op.child.vars() }

func (op *tracedOp) next() ([][]dict.ID, error) {
	ex := op.ex
	ts := ex.trace
	prev := ts.cur
	ts.cur = op.span
	cout0, work0, scan0 := ex.cout, ex.work, ex.scan
	start := time.Now()
	batch, err := op.child.next()
	op.span.WallNs += time.Since(start).Nanoseconds()
	op.span.Cout += ex.cout - cout0
	op.span.Work += ex.work - work0
	op.span.Scanned += int64(ex.scan - scan0)
	op.span.Calls++
	if batch != nil {
		op.span.Batches++
		op.span.Rows += int64(len(batch))
	}
	ts.cur = prev
	return batch, err
}

// tracedColOp is tracedOp for the columnar engine; Rows counts live rows
// (selection vectors applied).
type tracedColOp struct {
	ex    *executor
	child colOperator
	span  *obs.Span
}

func (op *tracedColOp) vars() []sparql.Var { return op.child.vars() }

func (op *tracedColOp) next() (*colBatch, error) {
	ex := op.ex
	ts := ex.trace
	prev := ts.cur
	ts.cur = op.span
	cout0, work0, scan0 := ex.cout, ex.work, ex.scan
	start := time.Now()
	b, err := op.child.next()
	op.span.WallNs += time.Since(start).Nanoseconds()
	op.span.Cout += ex.cout - cout0
	op.span.Work += ex.work - work0
	op.span.Scanned += int64(ex.scan - scan0)
	op.span.Calls++
	if b != nil {
		op.span.Batches++
		op.span.Rows += int64(b.live())
	}
	ts.cur = prev
	return b, err
}

// finishTrace finalizes and delivers the run's span tree. The
// materializing engine has no operator tree, so it reports a single
// root span carrying the whole run's accounting.
func (ex *executor) finishTrace(rows int, elapsed time.Duration) {
	root := ex.trace.root
	if root == nil {
		// Nothing was built (defensive; every engine creates a root).
		root = &obs.Span{Op: "Execute"}
	}
	if ex.opts.Mode == Materializing {
		root.Calls = 1
		root.Batches = 1
		root.Rows = int64(rows)
		root.WallNs = elapsed.Nanoseconds()
		root.Cout = ex.cout
		root.Work = ex.work
		root.Scanned = int64(ex.scan)
	}
	obs.Finalize(root)
	ex.opts.Trace.Collect(root)
}
