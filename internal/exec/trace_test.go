package exec

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sparql"
)

// Zero-overhead guarantee for the disabled path: with Options.Trace nil
// the engines must build the exact pre-trace operator tree (no wrapper
// operators anywhere) and a run must not allocate one byte more than a
// run that never heard of tracing.

const traceTestQuery = `SELECT ?f ?d WHERE {
  <http://x/alice> <http://x/knows> ?f .
  ?p <http://x/creator> ?f .
  ?p <http://x/date> ?d .
}`

// assertNoTraceWrappers walks the full object graph reachable from the
// operator tree (children live in unexported fields, so the walk is by
// reflection) and fails if any traced wrapper is found.
func assertNoTraceWrappers(t *testing.T, root interface{}) {
	t.Helper()
	seen := map[uintptr]bool{}
	var walk func(v reflect.Value)
	walk = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Ptr:
			if v.IsNil() || seen[v.Pointer()] {
				return
			}
			seen[v.Pointer()] = true
			walk(v.Elem())
		case reflect.Interface:
			if !v.IsNil() {
				walk(v.Elem())
			}
		case reflect.Struct:
			switch v.Type().Name() {
			case "tracedOp", "tracedColOp":
				t.Fatalf("untraced build produced a %s wrapper", v.Type().Name())
			}
			for i := 0; i < v.NumField(); i++ {
				walk(v.Field(i))
			}
		case reflect.Slice, reflect.Array:
			for i := 0; i < v.Len(); i++ {
				walk(v.Index(i))
			}
		case reflect.Map:
			for _, k := range v.MapKeys() {
				walk(v.MapIndex(k))
			}
		}
	}
	walk(reflect.ValueOf(root))
}

// TestTraceDisabledBuildsNoWrappers proves the structural half of the
// zero-overhead claim: nil collector means the serial and parallel
// operator trees of both engines contain no traced wrapper at any depth,
// while a non-nil collector roots the tree in one.
func TestTraceDisabledBuildsNoWrappers(t *testing.T) {
	st := buildSocialStore(t)
	q := sparql.MustParse(traceTestQuery)
	c, err := plan.Compile(q, st)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		opts := Options{Parallelism: par, MorselSize: 2}
		phys, err := plan.Lower(c, p, PhysOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		ex := &executor{st: st, ctx: context.Background(), opts: opts}
		root, err := ex.build(phys.Root)
		if err != nil {
			t.Fatal(err)
		}
		assertNoTraceWrappers(t, root)

		copts := Options{Mode: Columnar, Parallelism: par, MorselSize: 2}
		cphys, err := plan.Lower(c, p, PhysOptions(copts))
		if err != nil {
			t.Fatal(err)
		}
		cex := &executor{st: st, ctx: context.Background(), opts: copts}
		croot, err := cex.colBuild(cphys.Root)
		if err != nil {
			t.Fatal(err)
		}
		assertNoTraceWrappers(t, croot)

		// Sanity: the same build with a collector roots in a wrapper, so
		// the walker genuinely detects them.
		tex := &executor{st: st, ctx: context.Background(), opts: opts, trace: &traceState{}}
		troot, err := tex.build(phys.Root)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := troot.(*tracedOp); !ok {
			t.Fatalf("traced build returned %T, want *tracedOp", troot)
		}
	}
}

// TestTraceDisabledZeroExtraAllocs proves the allocation half: a run with
// an explicitly-nil collector allocates exactly as much as a run whose
// options never mention tracing, serially and under the morsel driver,
// on both engines. The traced run is measured too as a sensitivity check
// — if instrumenting didn't move the needle, the zero-delta assertions
// above would be vacuous.
func TestTraceDisabledZeroExtraAllocs(t *testing.T) {
	st := buildSocialStore(t)
	q := sparql.MustParse(traceTestQuery)
	c, err := plan.Compile(q, st)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		t.Fatal(err)
	}
	measure := func(opts Options) float64 {
		return testing.AllocsPerRun(100, func() {
			if _, err := Run(c, p, st, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, mode := range []ExecMode{Streaming, Columnar} {
		for _, par := range []int{1, 4} {
			baseline := measure(Options{Mode: mode, Parallelism: par, MorselSize: 2})
			off := measure(Options{Mode: mode, Parallelism: par, MorselSize: 2, Trace: nil})
			if off != baseline {
				t.Errorf("mode=%v par=%d: nil-trace run allocates %v, baseline %v (want identical)",
					mode, par, off, baseline)
			}
			on := measure(Options{Mode: mode, Parallelism: par, MorselSize: 2, Trace: &obs.Capture{}})
			if on <= baseline {
				t.Errorf("mode=%v par=%d: traced run allocates %v <= baseline %v; allocation probe is not sensitive",
					mode, par, on, baseline)
			}
		}
	}
}

// TestTraceCollectorReceivesFinalizedTree exercises the collector contract
// end to end inside the package: the collected root is finalized (Self*
// populated, totals matching the Result) and parallel runs attach morsel
// breakdowns summing to the run's morsel count.
func TestTraceCollectorReceivesFinalizedTree(t *testing.T) {
	st := buildSocialStore(t)
	capture := &obs.Capture{}
	res := run(t, st, traceTestQuery, Options{Parallelism: 4, MorselSize: 1, Trace: capture})
	root := capture.Root
	if root == nil {
		t.Fatal("no trace collected")
	}
	if root.Cout != res.Cout || root.Work != res.Work || root.Scanned != int64(res.Scanned) {
		t.Fatalf("root span (cout=%v work=%v scanned=%d) != result (cout=%v work=%v scanned=%d)",
			root.Cout, root.Work, root.Scanned, res.Cout, res.Work, res.Scanned)
	}
	cout, work, scanned := obs.Sum(root)
	if cout != res.Cout || work != res.Work || scanned != int64(res.Scanned) {
		t.Fatalf("Self* sum (cout=%v work=%v scanned=%d) != result (cout=%v work=%v scanned=%d)",
			cout, work, scanned, res.Cout, res.Work, res.Scanned)
	}
	var morsels int
	var visit func(s *obs.Span)
	visit = func(s *obs.Span) {
		morsels += len(s.Morsels)
		for _, c := range s.Children {
			visit(c)
		}
	}
	visit(root)
	if morsels != res.Morsels {
		t.Fatalf("span morsel breakdown has %d entries, run executed %d morsels", morsels, res.Morsels)
	}
}
