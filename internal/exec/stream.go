package exec

import (
	"fmt"
	"sort"

	"repro/internal/dict"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/store"
)

// This file implements the streaming engine: a tree of batch-pull
// operators built from a lowered physical plan. Leaf scans stream straight
// out of the hexastore indexes, index-nested-loop probes and filters are
// fully pipelined, and only the inherently blocking operators (hash /
// sort-merge / cross joins, ORDER BY) buffer their inputs — exactly the
// inputs the materializing engine buffers too. Every operator maintains
// the executor's Cout/Work/Scanned counters with the same per-tuple rules
// as the materializing path, so the two engines produce bit-identical
// Result values (Rows, Cout, Work, Scanned) for the same physical plan.

// streamBatch is the number of rows moved per operator pull. Batches
// amortize the per-call overhead while keeping pipeline memory bounded.
const streamBatch = 1024

// operator is a pull-based physical operator. next returns the next batch
// of rows, or nil when exhausted. Batches are never empty.
type operator interface {
	vars() []sparql.Var
	next() ([][]dict.ID, error)
}

// PhysOptions returns the lowering options the streaming engine uses for
// opts — the single place Options maps onto plan.PhysOptions, shared with
// EXPLAIN-style tooling so the printed physical plan is the executed one.
func PhysOptions(opts Options) plan.PhysOptions {
	physJoin := plan.PhysJoinHash
	if opts.Join == SortMergeJoin {
		physJoin = plan.PhysJoinMerge
	}
	return plan.PhysOptions{
		Join:        physJoin,
		PushFilters: opts.PushFilters,
		// The leapfrog multiway join is a columnar-only operator; the row
		// engines always lower to binary join trees.
		Leapfrog: opts.Leapfrog && opts.Mode == Columnar,
	}
}

// runStreaming lowers the plan and drains the operator tree.
func (ex *executor) runStreaming(c *plan.Compiled, p *plan.Plan) (*relation, error) {
	phys, err := plan.Lower(c, p, PhysOptions(ex.opts))
	if err != nil {
		return nil, err
	}
	root, err := ex.build(phys.Root)
	if err != nil {
		return nil, err
	}
	out := &relation{vars: root.vars()}
	for {
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		batch, err := root.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return out, nil
		}
		out.rows = append(out.rows, batch...)
	}
}

// build constructs the operator for one physical node. A node marked by
// the lowering as the top of a parallelism-eligible pipeline becomes a
// morsel-driven parallel operator when the run's Parallelism allows it;
// everything else (and every node inside such a pipeline) is built by
// buildNode.
func (ex *executor) build(n *plan.PhysNode) (operator, error) {
	if ex.trace != nil {
		return ex.buildTraced(n)
	}
	if ex.parallelism() > 1 && n.ParallelSource != nil {
		return ex.newParallelOp(n)
	}
	return ex.buildNode(n)
}

// buildNode constructs the serial operator for one physical node.
func (ex *executor) buildNode(n *plan.PhysNode) (operator, error) {
	switch n.Op {
	case plan.PhysIndexScan:
		return newScanOp(ex, n.Leaf), nil
	case plan.PhysIndexProbe:
		child, err := ex.build(n.Left)
		if err != nil {
			return nil, err
		}
		return newProbeOp(ex, child, n.Leaf), nil
	case plan.PhysHashJoin, plan.PhysMergeJoin, plan.PhysCross:
		left, err := ex.build(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := ex.build(n.Right)
		if err != nil {
			return nil, err
		}
		return &joinOp{ex: ex, op: n.Op, left: left, right: right}, nil
	case plan.PhysFilter:
		child, err := ex.build(n.Left)
		if err != nil {
			return nil, err
		}
		cs, err := compileFilters(child.vars(), n.Filters)
		if err != nil {
			return nil, err
		}
		return &filterOp{ex: ex, child: child, filters: cs}, nil
	case plan.PhysOrder:
		child, err := ex.build(n.Left)
		if err != nil {
			return nil, err
		}
		return &orderOp{ex: ex, child: child, keys: n.Keys}, nil
	case plan.PhysProject:
		child, err := ex.build(n.Left)
		if err != nil {
			return nil, err
		}
		cols := make([]int, len(n.Vars))
		for i, v := range n.Vars {
			ci := varIndexOf(child.vars(), v)
			if ci < 0 {
				return nil, fmt.Errorf("exec: SELECT of unbound variable ?%s", v)
			}
			cols[i] = ci
		}
		return &projectOp{child: child, outVars: n.Vars, cols: cols}, nil
	case plan.PhysDistinct:
		child, err := ex.build(n.Left)
		if err != nil {
			return nil, err
		}
		return &distinctOp{ex: ex, child: child, seen: map[string]bool{}}, nil
	case plan.PhysLimit:
		child, err := ex.build(n.Left)
		if err != nil {
			return nil, err
		}
		return &limitOp{child: child, limit: n.Limit, offset: n.Offset, earlyStop: ex.opts.EarlyStop}, nil
	case plan.PhysLeftJoin:
		left, err := ex.build(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := ex.build(n.Right)
		if err != nil {
			return nil, err
		}
		return &leftJoinOp{ex: ex, left: left, right: right}, nil
	case plan.PhysUnion:
		kids := make([]operator, len(n.Kids))
		kidVars := make([][]sparql.Var, len(n.Kids))
		for i, k := range n.Kids {
			kid, err := ex.build(k)
			if err != nil {
				return nil, err
			}
			kids[i] = kid
			kidVars[i] = kid.vars()
		}
		return &unionOp{ex: ex, kids: kids, outVars: n.Vars, maps: unionColMaps(n.Vars, kidVars)}, nil
	case plan.PhysAggregate:
		child, err := ex.build(n.Left)
		if err != nil {
			return nil, err
		}
		return newAggOp(ex, child, n.GroupBy, n.Aggs, n.Vars)
	default:
		return nil, fmt.Errorf("exec: unknown physical operator %v", n.Op)
	}
}

func varIndexOf(vars []sparql.Var, v sparql.Var) int {
	for i, x := range vars {
		if x == v {
			return i
		}
	}
	return -1
}

// tripleValue extracts position pos (0=S,1=P,2=O) of t.
func tripleValue(t store.IDTriple, pos int) dict.ID {
	switch pos {
	case 0:
		return t.S
	case 1:
		return t.P
	default:
		return t.O
	}
}

// --- Shared leaf plumbing ----------------------------------------------------

// scanPlan is the column-extraction plan of a leaf scan: one source
// position per output column, plus equality checks between positions
// holding the same (repeated) variable. Both engines build their scan
// rows through this one plan so their semantics cannot diverge.
type scanPlan struct {
	srcs   []scanSrc
	checks [][2]int
}

type scanSrc struct {
	col int
	pos int
}

// buildScanPlan derives the extraction plan for cp's output schema.
func buildScanPlan(cp *plan.CompiledPattern, outVars []sparql.Var) scanPlan {
	var sp scanPlan
	posVar := [3]sparql.Var{cp.VarS, cp.VarP, cp.VarO}
	for ci, v := range outVars {
		first := -1
		for pos, pv := range posVar {
			if pv != v {
				continue
			}
			if first == -1 {
				first = pos
				sp.srcs = append(sp.srcs, scanSrc{col: ci, pos: pos})
			} else {
				sp.checks = append(sp.checks, [2]int{first, pos})
			}
		}
	}
	return sp
}

// row extracts one output row from a matched triple, or nil when a
// repeated-variable check fails.
func (sp *scanPlan) row(m store.IDTriple, width int) []dict.ID {
	for _, ch := range sp.checks {
		if tripleValue(m, ch[0]) != tripleValue(m, ch[1]) {
			return nil
		}
	}
	row := make([]dict.ID, width)
	for _, s := range sp.srcs {
		row[s.col] = tripleValue(m, s.pos)
	}
	return row
}

// probePlan is the per-outer-row plan of an index nested-loop join:
// which outer columns bind which pattern positions, which leaf positions
// become new output columns, and which leaf-internal repeated variables
// must agree. Shared by both engines.
type probePlan struct {
	pat       store.Pattern
	outVars   []sparql.Var
	bindings  []probeBinding
	newCols   []int    // leaf positions appended as new output columns
	checks    [][2]int // leaf-internal repeated unshared variables
	anyShared bool
}

type probeBinding struct {
	pos      int
	outerCol int
}

// buildProbePlan derives the probe plan of cp driven by the outer schema.
func buildProbePlan(outer []sparql.Var, cp *plan.CompiledPattern) probePlan {
	pp := probePlan{pat: cp.Pat}
	posVar := [3]sparql.Var{cp.VarS, cp.VarP, cp.VarO}
	pp.outVars = append(pp.outVars, outer...)
	firstPos := map[sparql.Var]int{}
	for pos, v := range posVar {
		if v == "" {
			continue
		}
		if ci := varIndexOf(outer, v); ci >= 0 {
			pp.bindings = append(pp.bindings, probeBinding{pos: pos, outerCol: ci})
			pp.anyShared = true
			continue
		}
		if fp, seen := firstPos[v]; seen {
			pp.checks = append(pp.checks, [2]int{fp, pos})
			continue
		}
		firstPos[v] = pos
		pp.outVars = append(pp.outVars, v)
		pp.newCols = append(pp.newCols, pos)
	}
	return pp
}

// bind substitutes the outer row's shared columns into the pattern,
// reporting a conflict when a bound constant disagrees with the row.
func (pp *probePlan) bind(row []dict.ID) (store.Pattern, bool) {
	pat := pp.pat
	conflict := false
	for _, b := range pp.bindings {
		v := row[b.outerCol]
		switch b.pos {
		case 0:
			if pat.S != dict.None && pat.S != v {
				conflict = true
			}
			pat.S = v
		case 1:
			if pat.P != dict.None && pat.P != v {
				conflict = true
			}
			pat.P = v
		default:
			if pat.O != dict.None && pat.O != v {
				conflict = true
			}
			pat.O = v
		}
	}
	return pat, conflict
}

// row combines the outer row with a matched triple, or returns nil when a
// leaf-internal repeated-variable check fails.
func (pp *probePlan) row(outer []dict.ID, m store.IDTriple) []dict.ID {
	for _, ch := range pp.checks {
		if tripleValue(m, ch[0]) != tripleValue(m, ch[1]) {
			return nil
		}
	}
	nr := make([]dict.ID, 0, len(pp.outVars))
	nr = append(nr, outer...)
	for _, pos := range pp.newCols {
		nr = append(nr, tripleValue(m, pos))
	}
	return nr
}

// --- IndexScan ---------------------------------------------------------------

// scanOp streams a triple pattern out of the store index in batches,
// applying repeated-variable checks and extracting the pattern's variable
// columns — the streaming form of scanLeaf.
type scanOp struct {
	ex      *executor
	outVars []sparql.Var
	cursor  *store.Scan // nil for missing leaves (empty)
	plan    scanPlan
}

func newScanOp(ex *executor, cp *plan.CompiledPattern) *scanOp {
	op := &scanOp{ex: ex, outVars: cp.Vars()}
	if cp.Missing {
		return op
	}
	op.cursor = ex.st.Scan(cp.Pat)
	op.plan = buildScanPlan(cp, op.outVars)
	return op
}

func (op *scanOp) vars() []sparql.Var { return op.outVars }

func (op *scanOp) next() ([][]dict.ID, error) {
	if op.cursor == nil {
		return nil, nil
	}
	width := len(op.outVars)
	for {
		if err := op.ex.cancelled(); err != nil {
			return nil, err
		}
		triples := op.cursor.Next(streamBatch)
		if triples == nil {
			return nil, nil
		}
		op.ex.scan += len(triples)
		op.ex.work += float64(len(triples))
		rows := make([][]dict.ID, 0, len(triples))
		for _, m := range triples {
			if row := op.plan.row(m, width); row != nil {
				rows = append(rows, row)
			}
		}
		if len(rows) > 0 {
			return rows, nil
		}
	}
}

// --- IndexNestedLoopProbe ----------------------------------------------------

// probeOp is the pipelined index-nested-loop join: per row of the child,
// shared variables are bound into the leaf pattern and the store is
// probed — the streaming form of joinWithLeaf's main path.
type probeOp struct {
	ex      *executor
	child   operator
	plan    probePlan
	scratch []store.IDTriple // MatchBuf backing for the overlay merge path
}

func newProbeOp(ex *executor, child operator, cp *plan.CompiledPattern) *probeOp {
	return &probeOp{ex: ex, child: child, plan: buildProbePlan(child.vars(), cp)}
}

func (op *probeOp) vars() []sparql.Var { return op.plan.outVars }

func (op *probeOp) next() ([][]dict.ID, error) {
	for {
		if err := op.ex.cancelled(); err != nil {
			return nil, err
		}
		batch, err := op.child.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return nil, nil
		}
		var out [][]dict.ID
		for _, row := range batch {
			pat, conflict := op.plan.bind(row)
			op.ex.work++ // index probe
			if conflict {
				continue
			}
			var matches []store.IDTriple
			matches, op.scratch = op.ex.st.MatchBuf(pat, op.scratch)
			op.ex.scan += len(matches)
			op.ex.work += float64(len(matches))
			for _, m := range matches {
				if nr := op.plan.row(row, m); nr != nil {
					out = append(out, nr)
				}
			}
		}
		if len(out) > 0 {
			op.ex.cout += float64(len(out)) // join output counts toward Cout
			return out, nil
		}
	}
}

// --- Hash / sort-merge / cross joins -----------------------------------------

// joinOp is the pipeline breaker for composite-composite joins: it drains
// both children (each itself a stream) into buffered relations, runs the
// shared join kernel, and streams the result out in batches. This buffers
// exactly what the materializing engine buffers for the same plan shape.
type joinOp struct {
	ex          *executor
	op          plan.PhysOp
	left, right operator
	joined      bool
	outVars     []sparql.Var
	rows        [][]dict.ID
	pos         int
}

func (op *joinOp) vars() []sparql.Var {
	if op.outVars == nil {
		l, _ := outputSchema(
			&relation{vars: op.left.vars()},
			&relation{vars: op.right.vars()},
		)
		op.outVars = l
	}
	return op.outVars
}

func drain(child operator) (*relation, error) {
	rel := &relation{vars: child.vars()}
	for {
		batch, err := child.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return rel, nil
		}
		rel.rows = append(rel.rows, batch...)
	}
}

func (op *joinOp) next() ([][]dict.ID, error) {
	if !op.joined {
		op.joined = true
		l, err := drain(op.left)
		if err != nil {
			return nil, err
		}
		r, err := drain(op.right)
		if err != nil {
			return nil, err
		}
		var out *relation
		shared := sharedCols(l, r)
		switch {
		case op.op == plan.PhysCross || len(shared) == 0:
			out, err = op.ex.crossProduct(l, r)
		case op.op == plan.PhysMergeJoin:
			out, err = op.ex.mergeJoin(l, r, shared)
		default:
			out, err = op.ex.hashJoin(l, r, shared)
		}
		if err != nil {
			return nil, err
		}
		op.ex.cout += float64(len(out.rows))
		op.outVars = out.vars
		op.rows = out.rows
	}
	if op.pos >= len(op.rows) {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > len(op.rows) {
		end = len(op.rows)
	}
	batch := op.rows[op.pos:end]
	op.pos = end
	return batch, nil
}

// --- Filter ------------------------------------------------------------------

// filterOp applies compiled FILTER comparisons to each batch.
type filterOp struct {
	ex      *executor
	child   operator
	filters []compiledFilter
}

func (op *filterOp) vars() []sparql.Var { return op.child.vars() }

func (op *filterOp) next() ([][]dict.ID, error) {
	d := op.ex.st.Dict()
	for {
		batch, err := op.child.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return nil, nil
		}
		out := batch[:0:0]
		for _, row := range batch {
			op.ex.work++
			if evalFilters(d, op.filters, row) {
				out = append(out, row)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

// --- Order (blocking) --------------------------------------------------------

// orderOp drains its input and sorts it with the same stable comparator as
// the materializing finish step.
type orderOp struct {
	ex     *executor
	child  operator
	keys   []sparql.OrderKey
	sorted bool
	rows   [][]dict.ID
	pos    int
}

func (op *orderOp) vars() []sparql.Var { return op.child.vars() }

func (op *orderOp) next() ([][]dict.ID, error) {
	if !op.sorted {
		op.sorted = true
		rel, err := drain(op.child)
		if err != nil {
			return nil, err
		}
		if err := sortRowsByKeys(op.ex, rel, op.keys); err != nil {
			return nil, err
		}
		op.ex.work += float64(len(rel.rows))
		op.rows = rel.rows
	}
	if op.pos >= len(op.rows) {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > len(op.rows) {
		end = len(op.rows)
	}
	batch := op.rows[op.pos:end]
	op.pos = end
	return batch, nil
}

// sortRowsByKeys stably sorts rel.rows by the ORDER BY keys, shared by the
// streaming Order operator and the materializing finish step. The sort
// buffers the whole input, so the run's context is polled from inside the
// comparator: a dropped client aborts mid-sort instead of waiting out a
// huge ORDER BY.
func sortRowsByKeys(ex *executor, rel *relation, keys []sparql.OrderKey) (err error) {
	d := ex.st.Dict()
	cols := make([]int, len(keys))
	for i, k := range keys {
		ci := rel.colIndex(k.Var)
		if ci < 0 {
			return fmt.Errorf("exec: ORDER BY unbound variable ?%s", k.Var)
		}
		cols[i] = ci
	}
	defer recoverSortAbort(&err)
	sort.SliceStable(rel.rows, ex.lessWithCancel(func(i, j int) bool {
		for x, ci := range cols {
			a, b := rel.rows[i][ci], rel.rows[j][ci]
			if a == b {
				continue
			}
			c := compareOrder(d, a, b)
			if c == 0 {
				continue
			}
			if keys[x].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}))
	return nil
}

// --- Project -----------------------------------------------------------------

// projectOp maps each row onto the SELECT columns.
type projectOp struct {
	child   operator
	outVars []sparql.Var
	cols    []int
}

func (op *projectOp) vars() []sparql.Var { return op.outVars }

func (op *projectOp) next() ([][]dict.ID, error) {
	batch, err := op.child.next()
	if err != nil || batch == nil {
		return nil, err
	}
	out := make([][]dict.ID, len(batch))
	for i, row := range batch {
		pr := make([]dict.ID, len(op.cols))
		for j, ci := range op.cols {
			pr[j] = row[ci]
		}
		out[i] = pr
	}
	return out, nil
}

// --- Distinct ----------------------------------------------------------------

// distinctOp keeps the first occurrence of each row, streaming survivors.
type distinctOp struct {
	ex     *executor
	child  operator
	seen   map[string]bool
	keyBuf []byte
}

func (op *distinctOp) vars() []sparql.Var { return op.child.vars() }

func (op *distinctOp) next() ([][]dict.ID, error) {
	for {
		batch, err := op.child.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return nil, nil
		}
		out := batch[:0:0]
		for _, row := range batch {
			op.keyBuf = appendRowKey(op.keyBuf[:0], row)
			k := string(op.keyBuf)
			if !op.seen[k] {
				op.seen[k] = true
				out = append(out, row)
			}
			op.ex.work++
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

// --- Limit -------------------------------------------------------------------

// limitOp skips the first offset rows of the stream, then truncates it to
// limit rows (limit < 0 means unlimited — an OFFSET-only modifier). By
// default the child is still drained to exhaustion after the limit is
// reached: the materializing engine computes everything before
// truncating, and measured Cout/Work/Scanned must stay bit-identical
// between the two engines. With Options.EarlyStop the drain is skipped
// and the pipeline terminates as soon as the limit is reached (the
// serving-mode default); rows are unchanged, accounting reflects only the
// work actually done.
type limitOp struct {
	child     operator
	limit     int
	offset    int
	earlyStop bool
	skipped   int
	emitted   int
	drained   bool
}

func (op *limitOp) vars() []sparql.Var { return op.child.vars() }

func (op *limitOp) next() ([][]dict.ID, error) {
	for op.limit < 0 || op.emitted < op.limit {
		batch, err := op.child.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			op.drained = true
			return nil, nil
		}
		if skip := op.offset - op.skipped; skip > 0 {
			if len(batch) <= skip {
				op.skipped += len(batch)
				continue
			}
			op.skipped += skip
			batch = batch[skip:]
		}
		if op.limit >= 0 {
			if rest := op.limit - op.emitted; len(batch) > rest {
				batch = batch[:rest]
			}
		}
		op.emitted += len(batch)
		return batch, nil
	}
	if !op.drained {
		op.drained = true
		if !op.earlyStop {
			for {
				batch, err := op.child.next()
				if err != nil {
					return nil, err
				}
				if batch == nil {
					break
				}
			}
		}
	}
	return nil, nil
}
