package exec

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/store"
)

// This file implements the worst-case-optimal leapfrog triejoin over the
// hexastore permutations. Each pattern contributes one seek-capable cursor
// (store.ScanSeek) whose variable positions are ordered by the plan's
// global trie order, so every cursor walks a sorted run whose key prefix
// agrees with the trie levels the pattern participates in. The join
// intersects all participating cursors level by level; a full assignment
// of the trie variables determines exactly one triple per pattern, so each
// complete binding emits exactly one row and the multiway join never
// materializes a binary intermediate.
//
// Accounting is per level-match (work and scanned grow by the number of
// participating patterns) plus one work unit per emitted row, with Cout
// equal to the emitted rows — the node stands in for the whole binary join
// tree. These counts depend only on the set of matching values, so they
// are additive across value partitions of the top trie level, which is
// what makes the parallel run bit-identical to the serial one. Seek counts
// are schedule-dependent and go to KernelStats.LeapfrogSeeks only.

const lfMaxID = ^dict.ID(0)

// lfIter is one pattern's trie cursor: a seek-capable scan whose comp
// array tracks the currently bound variable components in trie order.
type lfIter struct {
	cur    *store.Scan
	varPos []int // triple positions of the pattern's vars, by trie level
	levels []int // global trie level of each var, ascending
	comp   [3]dict.ID
}

func newLFIter(st store.Source, cp *plan.CompiledPattern, trieLevel map[sparql.Var]int) *lfIter {
	type pv struct{ pos, level int }
	var pvs []pv
	posVar := [3]sparql.Var{cp.VarS, cp.VarP, cp.VarO}
	for pos, v := range posVar {
		if v == "" {
			continue
		}
		pvs = append(pvs, pv{pos, trieLevel[v]})
	}
	sort.Slice(pvs, func(i, j int) bool { return pvs[i].level < pvs[j].level })
	it := &lfIter{}
	for _, x := range pvs {
		it.varPos = append(it.varPos, x.pos)
		it.levels = append(it.levels, x.level)
	}
	it.cur = st.ScanSeek(cp.Pat, it.varPos)
	return it
}

// seek positions the cursor at the first key whose depth-d component is
// >= v under the currently bound shallower components (deeper components
// reset to zero). Seeks are bidirectional, which joinLevel relies on when
// it re-enters a group.
func (it *lfIter) seek(d int, v dict.ID) {
	it.comp[d] = v
	for i := d + 1; i < len(it.varPos); i++ {
		it.comp[i] = 0
	}
	it.cur.SeekVar(it.comp[0], it.comp[1], it.comp[2])
}

// head returns the depth-d component at the cursor head, or false when the
// cursor is exhausted or has left the group formed by the bound shallower
// components.
func (it *lfIter) head(d int) (dict.ID, bool) {
	k, ok := it.cur.HeadVar()
	if !ok {
		return 0, false
	}
	for i := 0; i < d; i++ {
		if k[i] != it.comp[i] {
			return 0, false
		}
	}
	return k[d], true
}

// lfPart is one level's participant: an iterator and the depth of the
// level's variable within that iterator.
type lfPart struct {
	it *lfIter
	d  int
}

// leapfrog drives one (serial or per-morsel) triejoin run.
type leapfrog struct {
	ex      *executor
	byLevel [][]lfPart
	binding []dict.ID
	emit    func(binding []dict.ID)
	lo0     dict.ID // level-0 lower bound (inclusive)
	hi0     dict.ID // level-0 upper bound (exclusive) when bounded
	bounded bool
	steps   int
}

func (lf *leapfrog) run() error { return lf.joinLevel(0) }

// joinLevel intersects all participants of one trie level, recursing into
// the next level on every match. On entry every participant is re-seeked
// to the start of its current group, so a level can be re-entered after
// the shallower binding advances.
func (lf *leapfrog) joinLevel(lvl int) error {
	parts := lf.byLevel[lvl]
	lo := dict.ID(0)
	if lvl == 0 {
		lo = lf.lo0
	}
	for _, p := range parts {
		p.it.seek(p.d, lo)
	}
	last := lvl == len(lf.byLevel)-1
	for {
		lf.steps++
		if lf.steps%cancelCheckRows == 0 {
			if err := lf.ex.cancelled(); err != nil {
				return err
			}
		}
		v, ok := lf.search(parts)
		if !ok {
			return nil
		}
		if lvl == 0 && lf.bounded && v >= lf.hi0 {
			return nil
		}
		k := len(parts)
		lf.ex.work += float64(k)
		lf.ex.scan += k
		lf.binding[lvl] = v
		for _, p := range parts {
			p.it.comp[p.d] = v
		}
		if last {
			lf.emit(lf.binding)
		} else if err := lf.joinLevel(lvl + 1); err != nil {
			return err
		}
		if v == lfMaxID {
			return nil
		}
		for _, p := range parts {
			p.it.seek(p.d, v+1)
		}
	}
}

// search runs the leapfrog intersection: repeatedly seek the lagging
// cursors up to the current maximum until all heads agree or one group is
// exhausted.
func (lf *leapfrog) search(parts []lfPart) (dict.ID, bool) {
	var max dict.ID
	for _, p := range parts {
		v, ok := p.it.head(p.d)
		if !ok {
			return 0, false
		}
		if v > max {
			max = v
		}
	}
	for {
		settled := true
		for _, p := range parts {
			v, ok := p.it.head(p.d)
			if !ok {
				return 0, false
			}
			if v < max {
				p.it.seek(p.d, max)
				lf.ex.kern.LeapfrogSeeks++
				v, ok = p.it.head(p.d)
				if !ok {
					return 0, false
				}
			}
			if v > max {
				max = v
				settled = false
			}
		}
		if settled {
			return max, true
		}
	}
}

// leapfrogOp is the columnar operator wrapping the triejoin: a pipeline
// breaker that materializes the full result (optionally in parallel over
// level-0 value partitions) and streams dense windows.
type leapfrogOp struct {
	ex   *executor
	node *plan.PhysNode
	ran  bool
	out  *colRelation
	pos  int
}

func newLeapfrogOp(ex *executor, n *plan.PhysNode) *leapfrogOp {
	return &leapfrogOp{ex: ex, node: n}
}

func (op *leapfrogOp) vars() []sparql.Var { return op.node.Vars }

func (op *leapfrogOp) next() (*colBatch, error) {
	if !op.ran {
		op.ran = true
		if err := op.run(); err != nil {
			return nil, err
		}
	}
	if op.pos >= op.out.n {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > op.out.n {
		end = op.out.n
	}
	b := op.out.window(op.pos, end)
	op.pos = end
	op.ex.kern.Batches++
	return b, nil
}

func (op *leapfrogOp) run() error {
	ex := op.ex
	n := op.node
	trieLevel := map[sparql.Var]int{}
	for i, v := range n.TrieVars {
		trieLevel[v] = i
	}
	// Output column j carries trie variable outMap[j].
	outMap := make([]int, len(n.Vars))
	for j, v := range n.Vars {
		outMap[j] = trieLevel[v]
	}
	nlevels := len(n.TrieVars)
	out := &colRelation{vars: n.Vars, cols: make([][]dict.ID, len(n.Vars))}
	op.out = out

	build := func(wex *executor, lo, hi dict.ID, bounded bool, dst *colRelation) *leapfrog {
		byLevel := make([][]lfPart, nlevels)
		for _, cp := range n.Leaves {
			it := newLFIter(ex.st, cp, trieLevel)
			for d, lvl := range it.levels {
				byLevel[lvl] = append(byLevel[lvl], lfPart{it: it, d: d})
			}
		}
		return &leapfrog{
			ex:      wex,
			byLevel: byLevel,
			binding: make([]dict.ID, nlevels),
			lo0:     lo,
			hi0:     hi,
			bounded: bounded,
			emit: func(b []dict.ID) {
				for j, lvl := range outMap {
					dst.cols[j] = append(dst.cols[j], b[lvl])
				}
				dst.n++
				wex.work++
				wex.kern.LeapfrogRows++
			},
		}
	}

	bounds := op.partitionBounds()
	if ex.parallelism() > 1 && len(bounds) > 1 {
		outs := make([]*colRelation, len(bounds))
		counters := make([]execCounters, len(bounds))
		workers, err := ex.runMorsels(len(bounds), func(i int) error {
			wex := ex.workerExecutor()
			dst := &colRelation{vars: n.Vars, cols: make([][]dict.ID, len(n.Vars))}
			var hi dict.ID
			bounded := i+1 < len(bounds)
			if bounded {
				hi = bounds[i+1]
			}
			lf := build(wex, bounds[i], hi, bounded, dst)
			if err := lf.run(); err != nil {
				return err
			}
			outs[i] = dst
			counters[i] = wex.counters()
			return nil
		})
		if err != nil {
			return err
		}
		ex.mergeMorsels(counters, workers)
		for _, o := range outs {
			for j := range out.cols {
				out.cols[j] = append(out.cols[j], o.cols[j]...)
			}
			out.n += o.n
		}
	} else {
		lf := build(ex, 0, 0, false, out)
		if err := lf.run(); err != nil {
			return err
		}
	}
	ex.cout += float64(out.n)
	return nil
}

// partitionBounds picks the level-0 boundary values a parallel run
// partitions the trie's top level by: the level-0 participant with the
// smallest index range is scanned once, and the level-0 component of the
// first triple after each morsel-sized chunk becomes a boundary. Each
// morsel then runs a full triejoin with fresh cursors over the half-open
// value range [bounds[i], bounds[i+1]); morsel-order concatenation equals
// the serial result because the trie emits level-0 values in ascending
// order. A single-element result means run serially.
func (op *leapfrogOp) partitionBounds() []dict.ID {
	ex := op.ex
	serial := []dict.ID{0}
	if ex.parallelism() <= 1 {
		return serial
	}
	n := op.node
	v0 := n.TrieVars[0]
	var primary *plan.CompiledPattern
	best := -1
	for _, cp := range n.Leaves {
		if cp.VarS != v0 && cp.VarP != v0 && cp.VarO != v0 {
			continue
		}
		c := ex.st.Count(cp.Pat)
		if best < 0 || c < best {
			best = c
			primary = cp
		}
	}
	size := ex.morselSize()
	if primary == nil || best < 2*size {
		return serial
	}
	trieLevel := map[sparql.Var]int{}
	for i, v := range n.TrieVars {
		trieLevel[v] = i
	}
	it := newLFIter(ex.st, primary, trieLevel)
	p0 := it.varPos[0]
	bounds := serial
	for {
		if it.cur.Next(size) == nil {
			break
		}
		t, ok := it.cur.Head()
		if !ok {
			break
		}
		if b := tripleValue(t, p0); b != bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return bounds
}
