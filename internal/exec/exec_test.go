package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

const ns = "http://x/"

func iri(n string) rdf.Term { return rdf.NewIRI(ns + n) }

func buildSocialStore(t testing.TB) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	// 3 people, friendships, posts with dates.
	add(iri("alice"), iri("knows"), iri("bob"))
	add(iri("bob"), iri("knows"), iri("carol"))
	add(iri("alice"), iri("knows"), iri("carol"))
	add(iri("alice"), iri("age"), rdf.NewInteger(30))
	add(iri("bob"), iri("age"), rdf.NewInteger(17))
	add(iri("carol"), iri("age"), rdf.NewInteger(45))
	add(iri("post1"), iri("creator"), iri("bob"))
	add(iri("post1"), iri("date"), rdf.NewTypedLiteral("2013-01-05", rdf.XSDDate))
	add(iri("post2"), iri("creator"), iri("carol"))
	add(iri("post2"), iri("date"), rdf.NewTypedLiteral("2013-03-01", rdf.XSDDate))
	add(iri("post3"), iri("creator"), iri("bob"))
	add(iri("post3"), iri("date"), rdf.NewTypedLiteral("2013-02-14", rdf.XSDDate))
	return b.Build()
}

func run(t testing.TB, st *store.Store, src string, opts Options) *Result {
	t.Helper()
	res, _, err := Query(sparql.MustParse(src), st, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func rowsAsStrings(st *store.Store, res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, id := range row {
			parts[i] = st.Dict().Decode(id).String()
		}
		out = append(out, strings.Join(parts, " | "))
	}
	sort.Strings(out)
	return out
}

func TestSingleScan(t *testing.T) {
	st := buildSocialStore(t)
	res := run(t, st, `SELECT * WHERE { ?s <http://x/knows> ?o . }`, Options{})
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Cout != 0 {
		t.Fatalf("single scan Cout = %v, want 0 (scans are free)", res.Cout)
	}
	if res.Scanned != 3 {
		t.Fatalf("scanned = %d", res.Scanned)
	}
}

func TestTwoPatternJoin(t *testing.T) {
	st := buildSocialStore(t)
	src := `SELECT ?f WHERE {
  <http://x/alice> <http://x/knows> ?f .
  ?f <http://x/age> ?a .
  FILTER(?a >= 18)
}`
	res := run(t, st, src, Options{})
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (carol)", len(res.Rows))
	}
	got := st.Dict().Decode(res.Rows[0][0])
	if got != iri("carol") {
		t.Fatalf("got %v, want carol", got)
	}
	if res.Cout < 1 {
		t.Fatalf("join Cout = %v, want >= 1", res.Cout)
	}
}

func TestNewestPostsOfFriends(t *testing.T) {
	// Shape of LDBC Q2: newest posts of a person's friends.
	st := buildSocialStore(t)
	src := `SELECT ?post ?d WHERE {
  <http://x/alice> <http://x/knows> ?f .
  ?post <http://x/creator> ?f .
  ?post <http://x/date> ?d .
} ORDER BY DESC(?d) LIMIT 2`
	res := run(t, st, src, Options{})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	first := st.Dict().Decode(res.Rows[0][0])
	second := st.Dict().Decode(res.Rows[1][0])
	if first != iri("post2") || second != iri("post3") {
		t.Fatalf("order wrong: %v then %v", first, second)
	}
}

func TestDistinctProjection(t *testing.T) {
	st := buildSocialStore(t)
	src := `SELECT DISTINCT ?f WHERE {
  ?p <http://x/knows> ?f .
  ?post <http://x/creator> ?f .
}`
	res := run(t, st, src, Options{})
	// bob is known by alice; carol by bob and alice; both have posts.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), rowsAsStrings(st, res))
	}
}

func TestHashAndMergeJoinAgree(t *testing.T) {
	st := buildSocialStore(t)
	src := `SELECT ?f ?post WHERE {
  ?p <http://x/knows> ?f .
  ?post <http://x/creator> ?f .
}`
	h := run(t, st, src, Options{Join: HashJoin})
	m := run(t, st, src, Options{Join: SortMergeJoin})
	hs, ms := rowsAsStrings(st, h), rowsAsStrings(st, m)
	if len(hs) != len(ms) {
		t.Fatalf("hash %d rows, merge %d rows", len(hs), len(ms))
	}
	for i := range hs {
		if hs[i] != ms[i] {
			t.Fatalf("row %d: hash %q merge %q", i, hs[i], ms[i])
		}
	}
	if h.Cout != m.Cout {
		t.Fatalf("Cout differs between algorithms: %v vs %v", h.Cout, m.Cout)
	}
}

func TestFilterSemantics(t *testing.T) {
	st := buildSocialStore(t)
	cases := []struct {
		filter string
		want   int
	}{
		{`FILTER(?a > 17)`, 2},
		{`FILTER(?a >= 17)`, 3},
		{`FILTER(?a = 30)`, 1},
		{`FILTER(?a != 30)`, 2},
		{`FILTER(?a < 18 && ?a > 10)`, 1},
		{`FILTER(?s != <http://x/alice>)`, 2},
	}
	for _, c := range cases {
		src := fmt.Sprintf(`SELECT * WHERE { ?s <http://x/age> ?a . %s }`, c.filter)
		res := run(t, st, src, Options{})
		if len(res.Rows) != c.want {
			t.Errorf("%s: rows = %d, want %d", c.filter, len(res.Rows), c.want)
		}
	}
}

func TestDateOrderingLexical(t *testing.T) {
	st := buildSocialStore(t)
	src := `SELECT ?post WHERE {
  ?post <http://x/date> ?d .
  FILTER(?d > "2013-01-31")
}`
	res := run(t, st, src, Options{})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (Feb+Mar posts)", len(res.Rows))
	}
}

func TestRepeatedVariablePattern(t *testing.T) {
	b := store.NewBuilder()
	if err := b.Add(rdf.NewTriple(iri("n1"), iri("p"), iri("n1"))); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(rdf.NewTriple(iri("n1"), iri("p"), iri("n2"))); err != nil {
		t.Fatal(err)
	}
	st := b.Build()
	res := run(t, st, `SELECT * WHERE { ?x <http://x/p> ?x . }`, Options{})
	if len(res.Rows) != 1 {
		t.Fatalf("self-loop rows = %d, want 1", len(res.Rows))
	}
}

func TestErrorPaths(t *testing.T) {
	st := buildSocialStore(t)
	bad := []string{
		`SELECT ?zzz WHERE { ?s <http://x/age> ?a . }`,                // project unbound
		`SELECT * WHERE { ?s <http://x/age> ?a . FILTER(?nope > 1) }`, // filter unbound
		`SELECT * WHERE { ?s <http://x/age> ?a . } ORDER BY ?nope`,    // order unbound
	}
	for _, src := range bad {
		if _, _, err := Query(sparql.MustParse(src), st, Options{}); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
	// Unbound parameter at compile time.
	q := sparql.MustParse(`SELECT * WHERE { ?s <http://x/age> %a . }`)
	if _, _, err := Query(q, st, Options{}); err == nil {
		t.Error("expected error for unbound parameter")
	}
}

func TestCoutCountsEveryJoin(t *testing.T) {
	st := buildSocialStore(t)
	src := `SELECT * WHERE {
  ?p <http://x/knows> ?f .
  ?post <http://x/creator> ?f .
  ?post <http://x/date> ?d .
}`
	res := run(t, st, src, Options{})
	// Two joins: their outputs sum to Cout. Final result has 5 rows
	// (alice-bob-post1/3, alice-carol-post2, bob-carol-post2, alice...).
	if res.Cout < float64(len(res.Rows)) {
		t.Fatalf("Cout %v < final result size %d", res.Cout, len(res.Rows))
	}
}

// naiveEval computes the BGP result by brute-force binding enumeration,
// used as the correctness oracle.
func naiveEval(st *store.Store, q *sparql.Query) map[string]bool {
	all, _ := st.Match(store.Pattern{})
	d := st.Dict()
	var results []map[sparql.Var]dict.ID
	var recurse func(i int, binding map[sparql.Var]dict.ID)
	match := func(n sparql.Node, id dict.ID, binding map[sparql.Var]dict.ID) (map[sparql.Var]dict.ID, bool) {
		switch n.Kind {
		case sparql.NodeTerm:
			tid, ok := d.Lookup(n.Term)
			if !ok || tid != id {
				return binding, false
			}
			return binding, true
		case sparql.NodeVar:
			if prev, ok := binding[n.Var]; ok {
				return binding, prev == id
			}
			nb := make(map[sparql.Var]dict.ID, len(binding)+1)
			for k, v := range binding {
				nb[k] = v
			}
			nb[n.Var] = id
			return nb, true
		}
		return binding, false
	}
	recurse = func(i int, binding map[sparql.Var]dict.ID) {
		if i == len(q.Where) {
			results = append(results, binding)
			return
		}
		tp := q.Where[i]
		for _, tr := range all {
			b1, ok := match(tp.S, tr.S, binding)
			if !ok {
				continue
			}
			b2, ok := match(tp.P, tr.P, b1)
			if !ok {
				continue
			}
			b3, ok := match(tp.O, tr.O, b2)
			if !ok {
				continue
			}
			recurse(i+1, b3)
		}
	}
	recurse(0, map[sparql.Var]dict.ID{})
	out := map[string]bool{}
	vars := q.Vars()
	for _, b := range results {
		var sb strings.Builder
		for _, v := range vars {
			fmt.Fprintf(&sb, "%d|", b[v])
		}
		out[sb.String()] = true
	}
	return out
}

// TestAgainstNaiveOracle cross-checks the executor against brute force on
// random star/chain/cycle queries over random data.
func TestAgainstNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := store.NewBuilder()
	for i := 0; i < 400; i++ {
		tr := rdf.NewTriple(
			iri(fmt.Sprintf("s%d", rng.Intn(30))),
			iri(fmt.Sprintf("p%d", rng.Intn(4))),
			iri(fmt.Sprintf("s%d", rng.Intn(30))),
		)
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Build()
	queries := []string{
		`SELECT * WHERE { ?a <http://x/p0> ?b . ?b <http://x/p1> ?c . }`,
		`SELECT * WHERE { ?a <http://x/p0> ?b . ?a <http://x/p1> ?c . ?a <http://x/p2> ?d . }`,
		`SELECT * WHERE { ?a <http://x/p0> ?b . ?b <http://x/p1> ?c . ?c <http://x/p2> ?a . }`,
		`SELECT * WHERE { ?a ?p <http://x/s5> . ?a <http://x/p1> ?b . }`,
		`SELECT * WHERE { ?a <http://x/p0> ?a . }`,
	}
	for _, src := range queries {
		q := sparql.MustParse(src)
		want := naiveEval(st, q)
		for _, opts := range []Options{
			{Join: HashJoin, Mode: Streaming},
			{Join: SortMergeJoin, Mode: Streaming},
			{Join: HashJoin, Mode: Materializing},
			{Join: SortMergeJoin, Mode: Materializing},
			{Join: HashJoin, Mode: Streaming, PushFilters: true},
		} {
			alg := opts.Join
			res, _, err := Query(q, st, opts)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			got := map[string]bool{}
			varIdx := map[sparql.Var]int{}
			for i, v := range res.Vars {
				varIdx[v] = i
			}
			for _, row := range res.Rows {
				var sb strings.Builder
				for _, v := range q.Vars() {
					fmt.Fprintf(&sb, "%d|", row[varIdx[v]])
				}
				got[sb.String()] = true
			}
			if len(got) != len(want) {
				t.Fatalf("%s (alg %d): got %d distinct rows, want %d", src, alg, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("%s (alg %d): missing row %s", src, alg, k)
				}
			}
		}
	}
}

func TestGreedyPipelineAgreesWithDP(t *testing.T) {
	st := buildSocialStore(t)
	src := `SELECT ?f ?post WHERE {
  ?p <http://x/knows> ?f .
  ?post <http://x/creator> ?f .
  ?post <http://x/date> ?d .
}`
	q := sparql.MustParse(src)
	dp, _, err := Query(q, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gr, gplan, err := QueryGreedy(q, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gplan.Method != "greedy" {
		t.Fatalf("method = %s", gplan.Method)
	}
	if len(dp.Rows) != len(gr.Rows) {
		t.Fatalf("dp %d rows, greedy %d rows", len(dp.Rows), len(gr.Rows))
	}
}

func TestIndexJoinRepeatedVarInLeaf(t *testing.T) {
	// Self-loop pattern joined via INL: ?x knows ?y . ?y p ?y .
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	add(iri("a"), iri("knows"), iri("b"))
	add(iri("a"), iri("knows"), iri("c"))
	add(iri("b"), iri("p"), iri("b")) // self loop
	add(iri("c"), iri("p"), iri("d")) // not a self loop
	st := b.Build()
	res := run(t, st, `SELECT * WHERE { ?x <http://x/knows> ?y . ?y <http://x/p> ?y . }`, Options{})
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only b self-loops)", len(res.Rows))
	}
}

func TestIndexJoinConflictingConstant(t *testing.T) {
	// The leaf has a constant where the outer row binds the same position
	// via a shared var appearing twice: ?x knows ?x . <a> knows ?x — the
	// second pattern constrains ?x at object with subject constant.
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	add(iri("a"), iri("knows"), iri("a"))
	add(iri("a"), iri("knows"), iri("b"))
	add(iri("b"), iri("knows"), iri("b"))
	st := b.Build()
	res := run(t, st, `SELECT * WHERE { ?x <http://x/knows> ?x . <http://x/a> <http://x/knows> ?x . }`, Options{})
	// ?x in {a, b} self-loops; a knows {a, b} → both qualify.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), rowsAsStrings(st, res))
	}
}

func TestCrossProductThroughLeafJoin(t *testing.T) {
	// Join where the leaf shares no variable with the outer: falls back to
	// a cross product under the hood.
	st := buildSocialStore(t)
	res := run(t, st, `SELECT * WHERE {
  <http://x/alice> <http://x/age> ?a .
  <http://x/bob> <http://x/age> ?b .
}`, Options{})
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestMissingTermPatternYieldsEmpty(t *testing.T) {
	st := buildSocialStore(t)
	res := run(t, st, `SELECT * WHERE {
  ?p <http://x/knows> ?f .
  ?f <http://x/nonexistent> ?z .
}`, Options{})
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
}
