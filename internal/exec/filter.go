package exec

import (
	"fmt"
	"strconv"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// compiledFilter is one FILTER comparison resolved against a schema:
// variable sides carry a column index, constant sides a term.
type compiledFilter struct {
	leftCol, rightCol   int // -1 when the side is a constant
	leftTerm, rightTerm rdf.Term
	op                  sparql.CompareOp
}

// compileFilters resolves filters against a schema. A filter referencing a
// variable absent from the schema fails the query (SPARQL would treat it
// as an error/unbound; for benchmark workloads it is a bug).
func compileFilters(vars []sparql.Var, filters []sparql.Filter) ([]compiledFilter, error) {
	cs := make([]compiledFilter, 0, len(filters))
	for _, f := range filters {
		c := compiledFilter{leftCol: -1, rightCol: -1, op: f.Op}
		switch f.Left.Kind {
		case sparql.NodeVar:
			c.leftCol = varIndexOf(vars, f.Left.Var)
			if c.leftCol < 0 {
				return nil, fmt.Errorf("exec: filter references unbound variable ?%s", f.Left.Var)
			}
		case sparql.NodeTerm:
			c.leftTerm = f.Left.Term
		default:
			return nil, fmt.Errorf("exec: filter contains unbound parameter %%%s", f.Left.Param)
		}
		switch f.Right.Kind {
		case sparql.NodeVar:
			c.rightCol = varIndexOf(vars, f.Right.Var)
			if c.rightCol < 0 {
				return nil, fmt.Errorf("exec: filter references unbound variable ?%s", f.Right.Var)
			}
		case sparql.NodeTerm:
			c.rightTerm = f.Right.Term
		default:
			return nil, fmt.Errorf("exec: filter contains unbound parameter %%%s", f.Right.Param)
		}
		cs = append(cs, c)
	}
	return cs, nil
}

// evalFilters reports whether row passes every compiled filter. A filter
// over an unbound column (dict.None, produced by OPTIONAL padding or UNION
// branches) drops the row: no comparison is true of an unbound value.
func evalFilters(d *dict.Dict, cs []compiledFilter, row []dict.ID) bool {
	for _, c := range cs {
		lt, rt := c.leftTerm, c.rightTerm
		if c.leftCol >= 0 {
			id := row[c.leftCol]
			if id == dict.None {
				return false
			}
			lt = d.Decode(id)
		}
		if c.rightCol >= 0 {
			id := row[c.rightCol]
			if id == dict.None {
				return false
			}
			rt = d.Decode(id)
		}
		if !evalCompare(lt, c.op, rt) {
			return false
		}
	}
	return true
}

// applyFilters evaluates all FILTER comparisons over the relation.
func (ex *executor) applyFilters(rel *relation, filters []sparql.Filter) (*relation, error) {
	if len(filters) == 0 {
		return rel, nil
	}
	cs, err := compileFilters(rel.vars, filters)
	if err != nil {
		return nil, err
	}
	d := ex.st.Dict()
	out := rel.rows[:0:0]
	for _, row := range rel.rows {
		ex.work++
		if evalFilters(d, cs, row) {
			out = append(out, row)
		}
	}
	return &relation{vars: rel.vars, rows: out}, nil
}

// evalCompare implements the comparison semantics: equality is term
// equality (with numeric coercion when both sides are numeric literals);
// ordering is numeric when both sides are numeric literals and lexical
// otherwise (which orders ISO dates correctly).
func evalCompare(l rdf.Term, op sparql.CompareOp, r rdf.Term) bool {
	lf, lok := numericValue(l)
	rf, rok := numericValue(r)
	if lok && rok {
		switch op {
		case sparql.OpEq:
			return lf == rf
		case sparql.OpNe:
			return lf != rf
		case sparql.OpLt:
			return lf < rf
		case sparql.OpLe:
			return lf <= rf
		case sparql.OpGt:
			return lf > rf
		case sparql.OpGe:
			return lf >= rf
		}
	}
	switch op {
	case sparql.OpEq:
		return l == r
	case sparql.OpNe:
		return l != r
	}
	c := compareLexical(l, r)
	switch op {
	case sparql.OpLt:
		return c < 0
	case sparql.OpLe:
		return c <= 0
	case sparql.OpGt:
		return c > 0
	case sparql.OpGe:
		return c >= 0
	}
	return false
}

func numericValue(t rdf.Term) (float64, bool) {
	if t.Kind != rdf.Literal {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	}
	return 0, false
}

func compareLexical(l, r rdf.Term) int {
	if l.Value < r.Value {
		return -1
	}
	if l.Value > r.Value {
		return 1
	}
	return 0
}

// finish applies projection, DISTINCT, ORDER BY and LIMIT.
func (ex *executor) finish(rel *relation, q *sparql.Query) (*relation, error) {
	// ORDER BY runs on the pre-projection schema (sort keys need not be
	// selected).
	if len(q.OrderBy) > 0 {
		if err := sortRowsByKeys(ex, rel, q.OrderBy); err != nil {
			return nil, err
		}
		ex.work += float64(len(rel.rows))
	}
	// Projection.
	if len(q.Select) > 0 {
		cols := make([]int, len(q.Select))
		for i, v := range q.Select {
			ci := rel.colIndex(v)
			if ci < 0 {
				return nil, fmt.Errorf("exec: SELECT of unbound variable ?%s", v)
			}
			cols[i] = ci
		}
		projected := make([][]dict.ID, len(rel.rows))
		for i, row := range rel.rows {
			pr := make([]dict.ID, len(cols))
			for j, ci := range cols {
				pr[j] = row[ci]
			}
			projected[i] = pr
		}
		rel = &relation{vars: append([]sparql.Var(nil), q.Select...), rows: projected}
	}
	if q.Distinct {
		seen := make(map[string]bool, len(rel.rows))
		out := rel.rows[:0:0]
		var keyBuf []byte
		for _, row := range rel.rows {
			keyBuf = appendRowKey(keyBuf[:0], row)
			k := string(keyBuf)
			if !seen[k] {
				seen[k] = true
				out = append(out, row)
			}
			ex.work++
		}
		rel = &relation{vars: rel.vars, rows: out}
	}
	// OFFSET skips rows before LIMIT counts them (SPARQL slice semantics).
	if q.Offset > 0 {
		if q.Offset >= len(rel.rows) {
			rel = &relation{vars: rel.vars}
		} else {
			rel = &relation{vars: rel.vars, rows: rel.rows[q.Offset:]}
		}
	}
	if limit, has := q.LimitCount(); has && len(rel.rows) > limit {
		rel = &relation{vars: rel.vars, rows: rel.rows[:limit]}
	}
	return rel, nil
}

// appendRowKey encodes a row as a fixed-width byte key for DISTINCT
// deduplication (4 bytes per 32-bit dictionary ID). Both engines must use
// this one encoding so they dedup identically.
func appendRowKey(buf []byte, row []dict.ID) []byte {
	for _, id := range row {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return buf
}

// compareOrder orders two dictionary IDs by their terms: numeric literals
// numerically, everything else lexically by value. The unbound sentinel
// (dict.None) sorts before every bound value.
func compareOrder(d *dict.Dict, a, b dict.ID) int {
	if a == dict.None || b == dict.None {
		switch {
		case a == b:
			return 0
		case a == dict.None:
			return -1
		default:
			return 1
		}
	}
	ta, tb := d.Decode(a), d.Decode(b)
	fa, oka := numericValue(ta)
	fb, okb := numericValue(tb)
	if oka && okb {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return ta.Compare(tb)
}
