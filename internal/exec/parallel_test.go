package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dict"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// buildParallelStore generates a social graph with the same vocabulary as
// buildStreamStore but ~n people, so the equivalence queries have scans and
// probe chains spanning many morsels.
func buildParallelStore(t testing.TB, n int) *store.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	person := func(i int) rdf.Term { return iri(fmt.Sprintf("person%d", i)) }
	for i := 0; i < n; i++ {
		add(person(i), iri("age"), rdf.NewInteger(int64(15+rng.Intn(60))))
		for k := 0; k < 1+rng.Intn(4); k++ {
			add(person(i), iri("knows"), person(rng.Intn(n)))
		}
		if rng.Intn(3) == 0 {
			post := iri(fmt.Sprintf("post%d", i))
			add(post, iri("creator"), person(rng.Intn(n)))
			add(post, iri("date"), rdf.NewTypedLiteral(
				fmt.Sprintf("2013-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)), rdf.XSDDate))
		}
	}
	// Keep buildStreamStore's named entities so every equivalence query
	// with constants still matches something.
	add(iri("alice"), iri("knows"), iri("bob"))
	add(iri("alice"), iri("age"), rdf.NewInteger(30))
	add(iri("bob"), iri("age"), rdf.NewInteger(17))
	add(iri("post1"), iri("creator"), iri("bob"))
	add(iri("n1"), iri("p"), iri("n1"))
	return b.Build()
}

// TestParallelMatchesSerial: over every equivalence query and both join
// algorithms, execution at Parallelism 2 and 8 must be bit-identical —
// rows, order, Cout, Work, Scanned — to the serial run. A small MorselSize
// forces genuine multi-morsel parallel execution on the test store.
func TestParallelMatchesSerial(t *testing.T) {
	st := buildParallelStore(t, 1500)
	for _, src := range equivalenceQueries {
		q := sparql.MustParse(src)
		for _, alg := range []JoinAlgorithm{HashJoin, SortMergeJoin} {
			serial, _, err := Query(q, st, Options{Join: alg})
			if err != nil {
				t.Fatalf("serial %s: %v", src, err)
			}
			for _, par := range []int{2, 8} {
				res, _, err := Query(q, st, Options{Join: alg, Parallelism: par, MorselSize: 64})
				if err != nil {
					t.Fatalf("parallel=%d %s: %v", par, src, err)
				}
				assertResultsIdentical(t, fmt.Sprintf("%s (alg %d, par %d)", src, alg, par), res, serial)
			}
		}
	}
}

// TestParallelReportsSchedule: a multi-morsel run reports its morsel count
// and worker ceiling, while serial runs report zero for both.
func TestParallelReportsSchedule(t *testing.T) {
	st := buildParallelStore(t, 1500)
	q := sparql.MustParse(`SELECT * WHERE { ?s <http://x/knows> ?o . ?o <http://x/age> ?a . }`)
	serial, _, err := Query(q, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Morsels != 0 || serial.Workers != 0 {
		t.Fatalf("serial run reported morsels=%d workers=%d", serial.Morsels, serial.Workers)
	}
	res, _, err := Query(q, st, Options{Parallelism: 4, MorselSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Morsels < 2 {
		t.Fatalf("parallel run reported %d morsels, want >= 2", res.Morsels)
	}
	if res.Workers < 2 || res.Workers > 4 {
		t.Fatalf("parallel run reported %d workers, want 2..4", res.Workers)
	}
	assertResultsIdentical(t, "schedule run", res, serial)
}

// TestParallelSmallInputFallsBackSerial: when the source range fits one
// morsel the driver uses the plain serial chain — and reports no morsels.
func TestParallelSmallInputFallsBackSerial(t *testing.T) {
	st := buildStreamStore(t)
	q := sparql.MustParse(`SELECT * WHERE { ?s <http://x/knows> ?o . }`)
	res, _, err := Query(q, st, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Morsels != 0 || res.Workers != 0 {
		t.Fatalf("small input ran parallel: morsels=%d workers=%d", res.Morsels, res.Workers)
	}
	serial, _, err := Query(q, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "small input", res, serial)
}

// TestParallelTokenPool: a dry shared pool degrades a parallel query to
// fewer workers (never blocking, never changing results), and every
// try-acquired token is returned.
func TestParallelTokenPool(t *testing.T) {
	st := buildParallelStore(t, 1500)
	q := sparql.MustParse(`SELECT * WHERE { ?s <http://x/knows> ?o . ?o <http://x/age> ?a . }`)
	serial, _, err := Query(q, st, Options{})
	if err != nil {
		t.Fatal(err)
	}

	pool := NewTokenPool(3)
	// The query's own admission token, as the service would hold it.
	if !pool.TryAcquire() {
		t.Fatal("fresh pool refused a token")
	}
	res, _, err := Query(q, st, Options{Parallelism: 8, MorselSize: 64, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "pooled", res, serial)
	if res.Workers > 3 {
		t.Fatalf("used %d workers with only 2 spare tokens (own goroutine + 2)", res.Workers)
	}
	if pool.InUse() != 1 {
		t.Fatalf("pool holds %d tokens after the run, want 1 (the admission token)", pool.InUse())
	}
	pool.Release()

	// Exhausted pool: the pipeline still completes on its own goroutine.
	small := NewTokenPool(1)
	if !small.TryAcquire() {
		t.Fatal("fresh pool refused a token")
	}
	res, _, err = Query(q, st, Options{Parallelism: 8, MorselSize: 64, Pool: small})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "dry pool", res, serial)
	if res.Workers != 1 {
		t.Fatalf("dry pool ran %d workers, want 1", res.Workers)
	}
	small.Release()
	if small.InUse() != 0 {
		t.Fatalf("pool holds %d tokens after release", small.InUse())
	}
}

// countdownCtx reports Done after its Err method has been polled n times —
// a deterministic stand-in for a client that drops mid-execution, used to
// prove the blocking kernels poll cancellation *inside* their loops.
type countdownCtx struct {
	context.Context
	calls int
	after int
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// bigRelation builds a relation of n rows over two columns with many
// duplicate join keys.
func bigRelation(vars []sparql.Var, n, keys int) *relation {
	rel := &relation{vars: vars}
	for i := 0; i < n; i++ {
		rel.rows = append(rel.rows, []dict.ID{dict.ID(1 + i%keys), dict.ID(1 + i)})
	}
	return rel
}

// TestHashJoinCancelsMidBuild: with a context that expires after a handful
// of polls, the hash join must abort inside its build loop — the build side
// alone crosses many cancelCheckRows boundaries.
func TestHashJoinCancelsMidBuild(t *testing.T) {
	st := buildStreamStore(t)
	l := bigRelation([]sparql.Var{"a", "b"}, 10*cancelCheckRows, 50)
	r := bigRelation([]sparql.Var{"a", "c"}, 12*cancelCheckRows, 50)
	ex := &executor{st: st, ctx: &countdownCtx{Context: context.Background(), after: 3}}
	if _, err := ex.hashJoin(l, r, sharedCols(l, r)); !errors.Is(err, context.Canceled) {
		t.Fatalf("hash join with cancelled ctx: err = %v, want Canceled", err)
	}
	// Sanity: a join of the same shape (but bounded fanout) completes under
	// a live context.
	ex = &executor{st: st}
	out, err := ex.hashJoin(
		bigRelation([]sparql.Var{"a", "b"}, 5000, 5000),
		bigRelation([]sparql.Var{"a", "c"}, 5000, 5000),
		[][2]int{{0, 0}})
	if err != nil || len(out.rows) == 0 {
		t.Fatalf("live hash join: %d rows, err %v", len(out.rows), err)
	}
}

// TestMergeJoinCancelsMidSort: the sort comparators poll the context, so a
// merge join over big inputs aborts while sorting.
func TestMergeJoinCancelsMidSort(t *testing.T) {
	st := buildStreamStore(t)
	l := bigRelation([]sparql.Var{"a", "b"}, 6*cancelCheckRows, 1000)
	r := bigRelation([]sparql.Var{"a", "c"}, 6*cancelCheckRows, 1000)
	ex := &executor{st: st, ctx: &countdownCtx{Context: context.Background(), after: 3}}
	if _, err := ex.mergeJoin(l, r, sharedCols(l, r)); !errors.Is(err, context.Canceled) {
		t.Fatalf("merge join with cancelled ctx: err = %v, want Canceled", err)
	}
}

// TestCrossProductCancelsMidKernel: the O(n*m) emit loop polls the context.
func TestCrossProductCancelsMidKernel(t *testing.T) {
	st := buildStreamStore(t)
	l := bigRelation([]sparql.Var{"a", "b"}, 3000, 3000)
	r := bigRelation([]sparql.Var{"c", "d"}, 3000, 3000)
	ex := &executor{st: st, ctx: &countdownCtx{Context: context.Background(), after: 3}}
	if _, err := ex.crossProduct(l, r); !errors.Is(err, context.Canceled) {
		t.Fatalf("cross product with cancelled ctx: err = %v, want Canceled", err)
	}
}

// TestOrderSortCancels: ORDER BY over a large buffered input aborts
// mid-sort through the comparator poll.
func TestOrderSortCancels(t *testing.T) {
	st := buildParallelStore(t, 4000)
	q := sparql.MustParse(`SELECT * WHERE { ?s <http://x/age> ?a . } ORDER BY ?a`)
	// Let the scan batches through, then expire during the sort: the scan
	// polls once per batch (~4000/1024 pulls), the sort every
	// cancelCheckRows comparisons of ~n log n total.
	ctx := &countdownCtx{Context: context.Background(), after: 8}
	c, p := compileAndPlan(t, q, st)
	if _, err := RunCtx(ctx, c, p, st, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("order-by with expiring ctx: err = %v, want Canceled", err)
	}
}

// TestParallelHashProbeMatchesSerial exercises the build-once/probe-in-
// parallel path of the hash join kernel directly against the serial kernel.
func TestParallelHashProbeMatchesSerial(t *testing.T) {
	st := buildStreamStore(t)
	l := bigRelation([]sparql.Var{"a", "b"}, 2000, 100)
	r := bigRelation([]sparql.Var{"a", "c"}, 30000, 100)
	serialEx := &executor{st: st}
	want, err := serialEx.hashJoin(l, r, sharedCols(l, r))
	if err != nil {
		t.Fatal(err)
	}
	parEx := &executor{st: st, opts: Options{Parallelism: 8, MorselSize: 512}}
	got, err := parEx.hashJoin(l, r, sharedCols(l, r))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.rows) != len(want.rows) {
		t.Fatalf("rows %d vs %d", len(got.rows), len(want.rows))
	}
	for i := range got.rows {
		for j := range got.rows[i] {
			if got.rows[i][j] != want.rows[i][j] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
	if parEx.work != serialEx.work || parEx.cout != serialEx.cout || parEx.scan != serialEx.scan {
		t.Fatalf("accounting differs: work %v vs %v, cout %v vs %v, scan %d vs %d",
			parEx.work, serialEx.work, parEx.cout, serialEx.cout, parEx.scan, serialEx.scan)
	}
	if parEx.morsels == 0 || parEx.workers < 2 {
		t.Fatalf("parallel probe did not run parallel: morsels=%d workers=%d", parEx.morsels, parEx.workers)
	}
}

// TestParallelCancellation: a parallel pipeline aborts with the context's
// error when the client drops mid-run.
func TestParallelCancellation(t *testing.T) {
	st := buildParallelStore(t, 3000)
	q := sparql.MustParse(`SELECT * WHERE { ?s <http://x/knows> ?o . ?o <http://x/age> ?a . }`)
	c, p := compileAndPlan(t, q, st)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, c, p, st, Options{Parallelism: 8, MorselSize: 64})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func compileAndPlan(t *testing.T, q *sparql.Query, st *store.Store) (*plan.Compiled, *plan.Plan) {
	t.Helper()
	c, err := plan.Compile(q, st)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}
