package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dict"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// assertResultsIdentical fails unless the two results agree bit-for-bit on
// schema, rows (including order) and the full accounting.
func assertResultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Vars) != len(b.Vars) {
		t.Fatalf("%s: vars %v vs %v", label, a.Vars, b.Vars)
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			t.Fatalf("%s: vars %v vs %v", label, a.Vars, b.Vars)
		}
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: %d rows vs %d rows", label, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			t.Fatalf("%s: row %d width differs", label, i)
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("%s: row %d col %d: %d vs %d", label, i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	if a.Cout != b.Cout {
		t.Fatalf("%s: Cout %v vs %v", label, a.Cout, b.Cout)
	}
	if a.Work != b.Work {
		t.Fatalf("%s: Work %v vs %v", label, a.Work, b.Work)
	}
	if a.Scanned != b.Scanned {
		t.Fatalf("%s: Scanned %d vs %d", label, a.Scanned, b.Scanned)
	}
}

// equivalenceQueries covers every operator: scans, INL chains and stars,
// leaf-leaf probes, cross products, repeated variables, missing patterns,
// filters (single- and multi-variable), ORDER BY, projection, DISTINCT and
// LIMIT.
var equivalenceQueries = []string{
	`SELECT * WHERE { ?s <http://x/knows> ?o . }`,
	`SELECT * WHERE { ?s ?p ?o . }`,
	`SELECT ?f WHERE { <http://x/alice> <http://x/knows> ?f . ?f <http://x/age> ?a . FILTER(?a >= 18) }`,
	`SELECT ?post ?d WHERE {
  <http://x/alice> <http://x/knows> ?f .
  ?post <http://x/creator> ?f .
  ?post <http://x/date> ?d .
} ORDER BY DESC(?d) LIMIT 2`,
	`SELECT DISTINCT ?f WHERE { ?p <http://x/knows> ?f . ?post <http://x/creator> ?f . }`,
	`SELECT * WHERE { ?s <http://x/age> ?a . FILTER(?a > 17) FILTER(?a < 40) }`,
	`SELECT * WHERE { ?x <http://x/p> ?x . }`,
	`SELECT * WHERE { <http://x/alice> <http://x/age> ?a . <http://x/bob> <http://x/age> ?b . }`,
	`SELECT * WHERE { <http://x/alice> <http://x/age> ?a . <http://x/bob> <http://x/age> ?b . FILTER(?a > ?b) }`,
	`SELECT * WHERE { ?p <http://x/knows> ?f . ?f <http://x/nonexistent> ?z . }`,
	`SELECT ?p WHERE { ?p <http://x/knows> ?f . ?p <http://x/age> ?a . ?post <http://x/creator> ?f . } ORDER BY ?p`,
	`SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }`,
	`SELECT DISTINCT ?f WHERE { ?p <http://x/knows> ?f . } ORDER BY ?f LIMIT 2`,
}

func buildStreamStore(t testing.TB) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	add(iri("alice"), iri("knows"), iri("bob"))
	add(iri("bob"), iri("knows"), iri("carol"))
	add(iri("alice"), iri("knows"), iri("carol"))
	add(iri("alice"), iri("age"), rdf.NewInteger(30))
	add(iri("bob"), iri("age"), rdf.NewInteger(17))
	add(iri("carol"), iri("age"), rdf.NewInteger(45))
	add(iri("post1"), iri("creator"), iri("bob"))
	add(iri("post1"), iri("date"), rdf.NewTypedLiteral("2013-01-05", rdf.XSDDate))
	add(iri("post2"), iri("creator"), iri("carol"))
	add(iri("post2"), iri("date"), rdf.NewTypedLiteral("2013-03-01", rdf.XSDDate))
	add(iri("post3"), iri("creator"), iri("bob"))
	add(iri("post3"), iri("date"), rdf.NewTypedLiteral("2013-02-14", rdf.XSDDate))
	add(iri("n1"), iri("p"), iri("n1"))
	add(iri("n1"), iri("p"), iri("n2"))
	return b.Build()
}

func TestStreamingMatchesMaterializing(t *testing.T) {
	st := buildStreamStore(t)
	for _, src := range equivalenceQueries {
		q := sparql.MustParse(src)
		for _, alg := range []JoinAlgorithm{HashJoin, SortMergeJoin} {
			sres, _, err := Query(q, st, Options{Join: alg, Mode: Streaming})
			if err != nil {
				t.Fatalf("streaming %s: %v", src, err)
			}
			mres, _, err := Query(q, st, Options{Join: alg, Mode: Materializing})
			if err != nil {
				t.Fatalf("materializing %s: %v", src, err)
			}
			assertResultsIdentical(t, fmt.Sprintf("%s (alg %d)", src, alg), sres, mres)
		}
	}
}

// TestStreamingMatchesMaterializingLarge exercises multi-batch pipelines:
// the store holds far more than one streamBatch of triples.
func TestStreamingMatchesMaterializingLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	b := store.NewBuilder()
	for i := 0; i < 6000; i++ {
		tr := rdf.NewTriple(
			iri(fmt.Sprintf("s%d", rng.Intn(300))),
			iri(fmt.Sprintf("p%d", rng.Intn(3))),
			iri(fmt.Sprintf("s%d", rng.Intn(300))),
		)
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Build()
	queries := []string{
		`SELECT * WHERE { ?a <http://x/p0> ?b . }`,
		`SELECT * WHERE { ?a <http://x/p0> ?b . ?b <http://x/p1> ?c . }`,
		`SELECT * WHERE { ?a <http://x/p0> ?b . ?b <http://x/p1> ?c . ?c <http://x/p2> ?d . }`,
		`SELECT DISTINCT ?b WHERE { ?a <http://x/p0> ?b . ?b <http://x/p1> ?c . } LIMIT 40`,
		`SELECT * WHERE { ?a <http://x/p0> ?a . ?a <http://x/p1> ?b . }`,
	}
	for _, src := range queries {
		q := sparql.MustParse(src)
		for _, alg := range []JoinAlgorithm{HashJoin, SortMergeJoin} {
			sres, _, err := Query(q, st, Options{Join: alg, Mode: Streaming})
			if err != nil {
				t.Fatalf("streaming %s: %v", src, err)
			}
			mres, _, err := Query(q, st, Options{Join: alg, Mode: Materializing})
			if err != nil {
				t.Fatalf("materializing %s: %v", src, err)
			}
			assertResultsIdentical(t, src, sres, mres)
		}
	}
}

// TestStreamingErrorPaths: the streaming engine must reject the same
// malformed queries as the materializing one.
func TestStreamingErrorPaths(t *testing.T) {
	st := buildStreamStore(t)
	bad := []string{
		`SELECT ?zzz WHERE { ?s <http://x/age> ?a . }`,
		`SELECT * WHERE { ?s <http://x/age> ?a . FILTER(?nope > 1) }`,
		`SELECT * WHERE { ?s <http://x/age> ?a . } ORDER BY ?nope`,
	}
	for _, src := range bad {
		for _, push := range []bool{false, true} {
			opts := Options{Mode: Streaming, PushFilters: push}
			if _, _, err := Query(sparql.MustParse(src), st, opts); err == nil {
				t.Errorf("expected error for %q (push=%v)", src, push)
			}
		}
	}
}

// TestLimitStillDrains: LIMIT must not terminate upstream operators early —
// the accounting (Cout, Work, Scanned) must match the unlimited execution
// exactly, as it does in the materializing engine.
func TestLimitStillDrains(t *testing.T) {
	st := buildStreamStore(t)
	base := `SELECT ?post WHERE { ?p <http://x/knows> ?f . ?post <http://x/creator> ?f . }`
	limited := base + ` LIMIT 1`
	full := run(t, st, base, Options{Mode: Streaming})
	lim := run(t, st, limited, Options{Mode: Streaming})
	if len(lim.Rows) != 1 {
		t.Fatalf("limited rows = %d", len(lim.Rows))
	}
	if lim.Cout != full.Cout || lim.Scanned != full.Scanned || lim.Work != full.Work {
		t.Fatalf("limit changed accounting: cout %v/%v scanned %d/%d work %v/%v",
			lim.Cout, full.Cout, lim.Scanned, full.Scanned, lim.Work, full.Work)
	}
}

// TestPushFiltersPrunesEarly: with pushdown on, final rows are unchanged
// (as multisets) but measured Cout shrinks because intermediate results
// are pruned before the joins.
func TestPushFiltersPrunesEarly(t *testing.T) {
	st := buildStreamStore(t)
	src := `SELECT ?f ?post WHERE {
  ?p <http://x/knows> ?f .
  ?f <http://x/age> ?a .
  ?post <http://x/creator> ?f .
  FILTER(?a >= 18)
  FILTER(?p != <http://x/bob>)
}`
	baseline := run(t, st, src, Options{Mode: Streaming})
	pushed := run(t, st, src, Options{Mode: Streaming, PushFilters: true})
	bs, ps := rowsAsStrings(st, baseline), rowsAsStrings(st, pushed)
	if len(bs) != len(ps) {
		t.Fatalf("pushdown changed results: %d vs %d rows", len(bs), len(ps))
	}
	for i := range bs {
		if bs[i] != ps[i] {
			t.Fatalf("pushdown changed row %d: %q vs %q", i, bs[i], ps[i])
		}
	}
	if pushed.Cout > baseline.Cout {
		t.Fatalf("pushdown increased Cout: %v > %v", pushed.Cout, baseline.Cout)
	}
	if pushed.Cout == baseline.Cout {
		t.Fatalf("pushdown had no effect on Cout (%v); expected pruning", pushed.Cout)
	}
}

// TestPushFiltersEquivalenceCorpus: pushdown preserves result multisets on
// the whole equivalence corpus.
func TestPushFiltersEquivalenceCorpus(t *testing.T) {
	st := buildStreamStore(t)
	for _, src := range equivalenceQueries {
		q := sparql.MustParse(src)
		plain, _, err := Query(q, st, Options{Mode: Streaming})
		if err != nil {
			t.Fatal(err)
		}
		pushed, _, err := Query(q, st, Options{Mode: Streaming, PushFilters: true})
		if err != nil {
			t.Fatalf("pushed %s: %v", src, err)
		}
		a, b := rowsAsStrings(st, plain), rowsAsStrings(st, pushed)
		if len(a) != len(b) {
			t.Fatalf("%s: pushdown changed result size %d vs %d", src, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: row %d differs: %q vs %q", src, i, a[i], b[i])
			}
		}
	}
}

// --- Operator unit tests -----------------------------------------------------

func compilePattern(t *testing.T, st *store.Store, src string) (*plan.Compiled, *plan.CompiledPattern) {
	t.Helper()
	c, err := plan.Compile(sparql.MustParse(src), st)
	if err != nil {
		t.Fatal(err)
	}
	return c, &c.Patterns[0]
}

func drainOp(t *testing.T, op operator) [][]dict.ID {
	t.Helper()
	var out [][]dict.ID
	for {
		batch, err := op.next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			return out
		}
		if len(batch) == 0 {
			t.Fatal("operator emitted an empty batch")
		}
		out = append(out, batch...)
	}
}

func TestScanOpUnit(t *testing.T) {
	st := buildStreamStore(t)
	ex := &executor{st: st}
	_, cp := compilePattern(t, st, `SELECT * WHERE { ?s <http://x/knows> ?o . }`)
	op := newScanOp(ex, cp)
	if len(op.vars()) != 2 {
		t.Fatalf("vars = %v", op.vars())
	}
	rows := drainOp(t, op)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if ex.scan != 3 || ex.work != 3 {
		t.Fatalf("scan=%d work=%v", ex.scan, ex.work)
	}
	// Exhausted cursor keeps returning nil.
	if b, _ := op.next(); b != nil {
		t.Fatal("next after exhaustion returned a batch")
	}
}

func TestScanOpRepeatedVar(t *testing.T) {
	st := buildStreamStore(t)
	ex := &executor{st: st}
	_, cp := compilePattern(t, st, `SELECT * WHERE { ?x <http://x/p> ?x . }`)
	op := newScanOp(ex, cp)
	rows := drainOp(t, op)
	if len(rows) != 1 {
		t.Fatalf("self-loop rows = %d, want 1", len(rows))
	}
	if ex.scan != 2 {
		t.Fatalf("scanned = %d, want 2 (both p-triples read)", ex.scan)
	}
}

func TestScanOpMissing(t *testing.T) {
	st := buildStreamStore(t)
	ex := &executor{st: st}
	_, cp := compilePattern(t, st, `SELECT * WHERE { ?s <http://x/nonexistent> ?o . }`)
	if !cp.Missing {
		t.Fatal("pattern should be missing")
	}
	op := newScanOp(ex, cp)
	if rows := drainOp(t, op); len(rows) != 0 {
		t.Fatalf("rows = %d", len(rows))
	}
	if ex.scan != 0 || ex.work != 0 {
		t.Fatalf("missing scan must not touch the store: scan=%d work=%v", ex.scan, ex.work)
	}
}

func TestProbeOpUnit(t *testing.T) {
	st := buildStreamStore(t)
	ex := &executor{st: st}
	c, _ := compilePattern(t, st, `SELECT * WHERE {
  <http://x/alice> <http://x/knows> ?f .
  ?f <http://x/age> ?a .
}`)
	outer := newScanOp(ex, &c.Patterns[0])
	probe := newProbeOp(ex, outer, &c.Patterns[1])
	wantVars := []sparql.Var{"f", "a"}
	got := probe.vars()
	if len(got) != len(wantVars) || got[0] != wantVars[0] || got[1] != wantVars[1] {
		t.Fatalf("vars = %v, want %v", got, wantVars)
	}
	rows := drainOp(t, probe)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (bob, carol)", len(rows))
	}
	if ex.cout != 2 {
		t.Fatalf("cout = %v, want 2 (probe output)", ex.cout)
	}
}

func TestJoinOpUnit(t *testing.T) {
	st := buildStreamStore(t)
	c, _ := compilePattern(t, st, `SELECT * WHERE {
  ?p <http://x/knows> ?f .
  ?q <http://x/knows> ?f .
}`)
	for _, kind := range []plan.PhysOp{plan.PhysHashJoin, plan.PhysMergeJoin} {
		ex := &executor{st: st}
		l := newScanOp(ex, &c.Patterns[0])
		r := newScanOp(ex, &c.Patterns[1])
		j := &joinOp{ex: ex, op: kind, left: l, right: r}
		rows := drainOp(t, j)
		// knows has 3 edges; join on ?f: bob(1×1) + carol(2×2) = 5.
		if len(rows) != 5 {
			t.Fatalf("%v: rows = %d, want 5", kind, len(rows))
		}
		if ex.cout != 5 {
			t.Fatalf("%v: cout = %v, want 5", kind, ex.cout)
		}
		if len(j.vars()) != 3 {
			t.Fatalf("%v: vars = %v", kind, j.vars())
		}
	}
}

func TestDistinctOpAcrossBatches(t *testing.T) {
	// Duplicates split across many batches must still be removed: the seen
	// set persists across next() calls.
	rng := rand.New(rand.NewSource(5))
	b := store.NewBuilder()
	for i := 0; i < 4000; i++ {
		tr := rdf.NewTriple(
			iri(fmt.Sprintf("s%d", i)),
			iri("p0"),
			iri(fmt.Sprintf("o%d", rng.Intn(7))),
		)
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Build()
	res := run(t, st, `SELECT DISTINCT ?o WHERE { ?s <http://x/p0> ?o . }`, Options{Mode: Streaming})
	if len(res.Rows) != 7 {
		t.Fatalf("distinct rows = %d, want 7", len(res.Rows))
	}
	m := run(t, st, `SELECT DISTINCT ?o WHERE { ?s <http://x/p0> ?o . }`, Options{Mode: Materializing})
	assertResultsIdentical(t, "distinct", res, m)
}
