package exec

import (
	"repro/internal/dict"
	"repro/internal/sparql"
)

// Columnar twins of the compositional-algebra operators (algebra.go).
// Each applies the row kernel's per-tuple accounting rules to the same
// logical tuple stream, so Rows, row order, Cout, Work and Scanned are
// bit-identical to the streaming engine; only KernelStats (batch/gather
// counts and the columnar probe counter) describe the columnar schedule.

// --- Left outer hash join (OPTIONAL) -----------------------------------------

// colLeftJoin mirrors leftJoin column-wise: hash table over the right
// rows, left rows probed in order, unmatched left rows padded with
// dict.None. Same accounting: +1 work per build row, per probe and per
// emitted row.
func (ex *executor) colLeftJoin(l, r *colRelation) (*colRelation, error) {
	shared := colSharedCols(l.vars, r.vars)
	vars, extra := outputSchema(&relation{vars: l.vars}, &relation{vars: r.vars})
	var keyBuf []byte
	rKey := func(row int32) string {
		keyBuf = keyBuf[:0]
		for _, sc := range shared {
			id := r.cols[sc[1]][row]
			keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		return string(keyBuf)
	}
	lKey := func(row int) string {
		keyBuf = keyBuf[:0]
		for _, sc := range shared {
			id := l.cols[sc[0]][row]
			keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		return string(keyBuf)
	}
	table := make(map[string][]int32, r.n)
	for i := 0; i < r.n; i++ {
		if i%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		k := rKey(int32(i))
		table[k] = append(table[k], int32(i))
	}
	ex.work += float64(r.n) // build cost
	nl := len(l.vars)
	out := &colRelation{vars: vars, cols: make([][]dict.ID, len(vars))}
	emit := func(lr int, rr int32, matched bool) {
		for ci := 0; ci < nl; ci++ {
			out.cols[ci] = append(out.cols[ci], l.cols[ci][lr])
		}
		for k, ci := range extra {
			if matched {
				out.cols[nl+k] = append(out.cols[nl+k], r.cols[ci][rr])
			} else {
				out.cols[nl+k] = append(out.cols[nl+k], dict.None)
			}
		}
		out.n++
		ex.work++ // emit cost
		ex.kern.LeftJoinRows++
	}
	steps := 0
	for i := 0; i < l.n; i++ {
		steps++
		if steps%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		ex.work++ // probe cost
		ex.kern.HashProbeRows++
		matches := table[lKey(i)]
		if len(matches) == 0 {
			emit(i, 0, false)
			continue
		}
		for _, rr := range matches {
			emit(i, rr, true)
		}
	}
	return out, nil
}

// colLeftJoinOp is the columnar pipeline breaker for PhysLeftJoin.
type colLeftJoinOp struct {
	ex          *executor
	left, right colOperator
	joined      bool
	outVars     []sparql.Var
	out         *colRelation
	pos         int
}

func (op *colLeftJoinOp) vars() []sparql.Var {
	if op.outVars == nil {
		op.outVars, _ = outputSchema(
			&relation{vars: op.left.vars()},
			&relation{vars: op.right.vars()},
		)
	}
	return op.outVars
}

func (op *colLeftJoinOp) next() (*colBatch, error) {
	if !op.joined {
		op.joined = true
		l, err := op.ex.drainCol(op.left)
		if err != nil {
			return nil, err
		}
		r, err := op.ex.drainCol(op.right)
		if err != nil {
			return nil, err
		}
		out, err := op.ex.colLeftJoin(l, r)
		if err != nil {
			return nil, err
		}
		op.ex.cout += float64(out.n)
		op.outVars = out.vars
		op.out = out
	}
	if op.pos >= op.out.n {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > op.out.n {
		end = op.out.n
	}
	b := op.out.window(op.pos, end)
	op.pos = end
	op.ex.kern.Batches++
	return b, nil
}

// --- Union -------------------------------------------------------------------

// colUnionOp streams each branch to exhaustion in order, gathering live
// rows into dense batches over the union schema and padding columns the
// branch does not bind with dict.None. Same accounting as unionOp: +1
// work per emitted row, output size toward Cout.
type colUnionOp struct {
	ex      *executor
	kids    []colOperator
	outVars []sparql.Var
	maps    [][]int
	cur     int
}

func (op *colUnionOp) vars() []sparql.Var { return op.outVars }

func (op *colUnionOp) next() (*colBatch, error) {
	for op.cur < len(op.kids) {
		if err := op.ex.cancelled(); err != nil {
			return nil, err
		}
		b, err := op.kids[op.cur].next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			op.cur++
			continue
		}
		m := op.maps[op.cur]
		n := b.live()
		cols := make([][]dict.ID, len(op.outVars))
		for j, ci := range m {
			col := make([]dict.ID, n) // zero-valued = dict.None padding
			if ci >= 0 {
				if b.sel != nil {
					src := b.cols[ci]
					for i, x := range b.sel {
						col[i] = src[x]
					}
				} else {
					copy(col, b.cols[ci][:n])
				}
			}
			cols[j] = col
		}
		if b.sel != nil {
			op.ex.kern.GatherRows += n
		}
		op.ex.work += float64(n) // emit cost
		op.ex.kern.UnionRows += n
		op.ex.cout += float64(n)
		op.ex.kern.Batches++
		return &colBatch{schema: op.outVars, cols: cols, n: n}, nil
	}
	return nil, nil
}

// --- Aggregation -------------------------------------------------------------

// colAggOp drains its input into a dense columnar relation and runs the
// shared aggregation kernel (aggregateRows) over it column-wise, then
// streams the group rows as dense batches.
type colAggOp struct {
	ex      *executor
	child   colOperator
	outVars []sparql.Var
	keyCols []int
	specs   []aggSpec
	done    bool
	out     *colRelation
	pos     int
}

func (op *colAggOp) vars() []sparql.Var { return op.outVars }

func (op *colAggOp) next() (*colBatch, error) {
	if !op.done {
		op.done = true
		rel, err := op.ex.drainCol(op.child)
		if err != nil {
			return nil, err
		}
		rows, err := aggregateRows(op.ex,
			func(r, c int) dict.ID { return rel.cols[c][r] },
			rel.n, op.keyCols, op.specs)
		if err != nil {
			return nil, err
		}
		out := &colRelation{vars: op.outVars, cols: make([][]dict.ID, len(op.outVars))}
		for _, row := range rows {
			for j, id := range row {
				out.cols[j] = append(out.cols[j], id)
			}
			out.n++
		}
		op.out = out
	}
	if op.pos >= op.out.n {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > op.out.n {
		end = op.out.n
	}
	b := op.out.window(op.pos, end)
	op.pos = end
	op.ex.kern.Batches++
	return b, nil
}
