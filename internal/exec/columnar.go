package exec

import (
	"fmt"
	"sort"

	"repro/internal/dict"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/store"
)

// This file implements the columnar engine: the same lowered physical plan
// as the streaming engine, executed over dense per-variable column batches
// with optional selection vectors instead of row slices. Filters refine a
// selection vector (with a per-ID verdict memo for column-vs-constant
// comparisons), probes and joins append column-wise, and sorts permute an
// index array instead of moving rows.
//
// Bit-identity argument: every operator applies the streaming engine's
// per-tuple accounting rules to the same logical tuple stream (selection
// vectors carry exactly the rows a streaming batch would carry), the hash
// join uses the same build-side rule and probe order, the merge join sorts
// a permutation array with the same comparator (identical comparator
// outcomes at every step imply the identical final arrangement), and ORDER
// BY uses a stable sort whose result is uniquely determined by keys plus
// input order. Rows, row order, Cout, Work and Scanned are therefore
// bit-identical to Streaming for the same options at every Parallelism —
// which the golden and differential suites assert. KernelStats (batch and
// kernel-row counts) describe the columnar schedule and are excluded from
// that comparison.

// colBatch is a batch of rows in columnar layout: one dense column per
// schema variable, each of length n, plus an optional selection vector of
// live row indexes (nil = all n rows live, strictly ascending otherwise).
type colBatch struct {
	schema []sparql.Var
	cols   [][]dict.ID
	n      int
	sel    []int32
}

// live returns the number of live rows.
func (b *colBatch) live() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// sliceLive returns a view of the batch's live rows [from, to).
func (b *colBatch) sliceLive(from, to int) *colBatch {
	if b.sel != nil {
		return &colBatch{schema: b.schema, cols: b.cols, n: b.n, sel: b.sel[from:to]}
	}
	cols := make([][]dict.ID, len(b.cols))
	for j := range cols {
		cols[j] = b.cols[j][from:to]
	}
	return &colBatch{schema: b.schema, cols: cols, n: to - from}
}

// colRelation is a fully materialized columnar table (no selection).
type colRelation struct {
	vars []sparql.Var
	cols [][]dict.ID
	n    int
}

// appendBatch gathers a batch's live rows onto the relation's columns,
// compacting through the selection vector when present.
func (r *colRelation) appendBatch(ex *executor, b *colBatch) {
	if b.sel != nil {
		ex.kern.GatherRows += len(b.sel)
		for j := range r.cols {
			col := b.cols[j]
			for _, x := range b.sel {
				r.cols[j] = append(r.cols[j], col[x])
			}
		}
		r.n += len(b.sel)
		return
	}
	for j := range r.cols {
		r.cols[j] = append(r.cols[j], b.cols[j][:b.n]...)
	}
	r.n += b.n
}

// window returns the dense sub-batch [lo, hi) of the relation's rows.
func (r *colRelation) window(lo, hi int) *colBatch {
	cols := make([][]dict.ID, len(r.cols))
	for j := range cols {
		cols[j] = r.cols[j][lo:hi]
	}
	return &colBatch{schema: r.vars, cols: cols, n: hi - lo}
}

// colOperator is the pull-based columnar operator interface. next returns
// the next batch (never empty of live rows), or nil when exhausted.
type colOperator interface {
	vars() []sparql.Var
	next() (*colBatch, error)
}

// runColumnar lowers the plan (including the leapfrog option when enabled)
// and drains the columnar operator tree into a row relation.
func (ex *executor) runColumnar(c *plan.Compiled, p *plan.Plan) (*relation, error) {
	phys, err := plan.Lower(c, p, PhysOptions(ex.opts))
	if err != nil {
		return nil, err
	}
	root, err := ex.colBuild(phys.Root)
	if err != nil {
		return nil, err
	}
	out := &relation{vars: root.vars()}
	width := len(root.vars())
	for {
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		b, err := root.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if b.sel != nil {
			for _, r := range b.sel {
				row := make([]dict.ID, width)
				for j := range b.cols {
					row[j] = b.cols[j][r]
				}
				out.rows = append(out.rows, row)
			}
			continue
		}
		for r := 0; r < b.n; r++ {
			row := make([]dict.ID, width)
			for j := range b.cols {
				row[j] = b.cols[j][r]
			}
			out.rows = append(out.rows, row)
		}
	}
}

// colBuild constructs the columnar operator for one physical node,
// dispatching parallelism-eligible pipelines like the streaming build.
func (ex *executor) colBuild(n *plan.PhysNode) (colOperator, error) {
	if ex.trace != nil {
		return ex.colBuildTraced(n)
	}
	if ex.parallelism() > 1 && n.ParallelSource != nil {
		return ex.newColParallelOp(n)
	}
	return ex.colBuildNode(n)
}

// colBuildNode constructs the serial columnar operator for one node.
func (ex *executor) colBuildNode(n *plan.PhysNode) (colOperator, error) {
	switch n.Op {
	case plan.PhysIndexScan:
		return newColScanOp(ex, n.Leaf), nil
	case plan.PhysIndexProbe:
		child, err := ex.colBuild(n.Left)
		if err != nil {
			return nil, err
		}
		return &colProbeOp{ex: ex, child: child, plan: buildProbePlan(child.vars(), n.Leaf)}, nil
	case plan.PhysHashJoin, plan.PhysMergeJoin, plan.PhysCross:
		left, err := ex.colBuild(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := ex.colBuild(n.Right)
		if err != nil {
			return nil, err
		}
		return &colJoinOp{ex: ex, op: n.Op, left: left, right: right}, nil
	case plan.PhysFilter:
		child, err := ex.colBuild(n.Left)
		if err != nil {
			return nil, err
		}
		cs, err := compileFilters(child.vars(), n.Filters)
		if err != nil {
			return nil, err
		}
		return newColFilterOp(ex, child, cs), nil
	case plan.PhysOrder:
		child, err := ex.colBuild(n.Left)
		if err != nil {
			return nil, err
		}
		return &colOrderOp{ex: ex, child: child, keys: n.Keys}, nil
	case plan.PhysProject:
		child, err := ex.colBuild(n.Left)
		if err != nil {
			return nil, err
		}
		cols := make([]int, len(n.Vars))
		for i, v := range n.Vars {
			ci := varIndexOf(child.vars(), v)
			if ci < 0 {
				return nil, fmt.Errorf("exec: SELECT of unbound variable ?%s", v)
			}
			cols[i] = ci
		}
		return &colProjectOp{child: child, outVars: n.Vars, cols: cols}, nil
	case plan.PhysDistinct:
		child, err := ex.colBuild(n.Left)
		if err != nil {
			return nil, err
		}
		return &colDistinctOp{ex: ex, child: child, seen: map[string]bool{}}, nil
	case plan.PhysLimit:
		child, err := ex.colBuild(n.Left)
		if err != nil {
			return nil, err
		}
		return &colLimitOp{child: child, limit: n.Limit, offset: n.Offset, earlyStop: ex.opts.EarlyStop}, nil
	case plan.PhysLeapfrog:
		return newLeapfrogOp(ex, n), nil
	case plan.PhysLeftJoin:
		left, err := ex.colBuild(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := ex.colBuild(n.Right)
		if err != nil {
			return nil, err
		}
		return &colLeftJoinOp{ex: ex, left: left, right: right}, nil
	case plan.PhysUnion:
		kids := make([]colOperator, len(n.Kids))
		kidVars := make([][]sparql.Var, len(n.Kids))
		for i, k := range n.Kids {
			kid, err := ex.colBuild(k)
			if err != nil {
				return nil, err
			}
			kids[i] = kid
			kidVars[i] = kid.vars()
		}
		return &colUnionOp{ex: ex, kids: kids, outVars: n.Vars, maps: unionColMaps(n.Vars, kidVars)}, nil
	case plan.PhysAggregate:
		child, err := ex.colBuild(n.Left)
		if err != nil {
			return nil, err
		}
		in := child.vars()
		keyCols := make([]int, len(n.GroupBy))
		for i, v := range n.GroupBy {
			ci := varIndexOf(in, v)
			if ci < 0 {
				return nil, fmt.Errorf("exec: GROUP BY unbound variable ?%s", v)
			}
			keyCols[i] = ci
		}
		specs, err := compileAggs(in, n.Aggs)
		if err != nil {
			return nil, err
		}
		return &colAggOp{ex: ex, child: child, outVars: n.Vars, keyCols: keyCols, specs: specs}, nil
	default:
		return nil, fmt.Errorf("exec: unknown physical operator %v", n.Op)
	}
}

// drainCol pulls a columnar child to exhaustion into a dense relation.
func (ex *executor) drainCol(child colOperator) (*colRelation, error) {
	rel := &colRelation{vars: child.vars(), cols: make([][]dict.ID, len(child.vars()))}
	for {
		b, err := child.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rel, nil
		}
		rel.appendBatch(ex, b)
	}
}

// --- IndexScan ---------------------------------------------------------------

// colScanOp streams a triple pattern out of the store index, transposing
// each triple batch into dense columns with one tight per-position loop per
// output column.
type colScanOp struct {
	ex      *executor
	outVars []sparql.Var
	cursor  *store.Scan // nil for missing leaves (empty)
	plan    scanPlan
	keep    []store.IDTriple
}

func newColScanOp(ex *executor, cp *plan.CompiledPattern) *colScanOp {
	op := &colScanOp{ex: ex, outVars: cp.Vars()}
	if cp.Missing {
		return op
	}
	op.cursor = ex.st.Scan(cp.Pat)
	op.plan = buildScanPlan(cp, op.outVars)
	return op
}

func (op *colScanOp) vars() []sparql.Var { return op.outVars }

func (op *colScanOp) next() (*colBatch, error) {
	if op.cursor == nil {
		return nil, nil
	}
	for {
		if err := op.ex.cancelled(); err != nil {
			return nil, err
		}
		triples := op.cursor.Next(streamBatch)
		if triples == nil {
			return nil, nil
		}
		op.ex.scan += len(triples)
		op.ex.work += float64(len(triples))
		if len(op.plan.checks) > 0 {
			// Repeated-variable checks drop rows up front so emitted
			// batches stay dense.
			op.keep = op.keep[:0]
			for _, m := range triples {
				ok := true
				for _, ch := range op.plan.checks {
					if tripleValue(m, ch[0]) != tripleValue(m, ch[1]) {
						ok = false
						break
					}
				}
				if ok {
					op.keep = append(op.keep, m)
				}
			}
			triples = op.keep
		}
		if len(triples) == 0 {
			continue
		}
		n := len(triples)
		cols := make([][]dict.ID, len(op.outVars))
		for _, s := range op.plan.srcs {
			col := make([]dict.ID, n)
			switch s.pos {
			case 0:
				for i := range triples {
					col[i] = triples[i].S
				}
			case 1:
				for i := range triples {
					col[i] = triples[i].P
				}
			default:
				for i := range triples {
					col[i] = triples[i].O
				}
			}
			cols[s.col] = col
		}
		op.ex.kern.Batches++
		return &colBatch{schema: op.outVars, cols: cols, n: n}, nil
	}
}

// --- IndexNestedLoopProbe ----------------------------------------------------

// colProbeOp probes the store per live input row and appends matches
// column-wise, reusing one MatchBuf scratch for the overlay merge path.
type colProbeOp struct {
	ex      *executor
	child   colOperator
	plan    probePlan
	scratch []store.IDTriple
}

func (op *colProbeOp) vars() []sparql.Var { return op.plan.outVars }

func (op *colProbeOp) next() (*colBatch, error) {
	for {
		if err := op.ex.cancelled(); err != nil {
			return nil, err
		}
		in, err := op.child.next()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		out := op.probeBatch(in)
		if out != nil {
			op.ex.cout += float64(out.n) // join output counts toward Cout
			op.ex.kern.Batches++
			return out, nil
		}
	}
}

func (op *colProbeOp) probeBatch(in *colBatch) *colBatch {
	pp := &op.plan
	nin := len(in.schema)
	outCols := make([][]dict.ID, len(pp.outVars))
	outN := 0
	probeRow := func(r int32) {
		pat := pp.pat
		conflict := false
		for _, bd := range pp.bindings {
			v := in.cols[bd.outerCol][r]
			switch bd.pos {
			case 0:
				if pat.S != dict.None && pat.S != v {
					conflict = true
				}
				pat.S = v
			case 1:
				if pat.P != dict.None && pat.P != v {
					conflict = true
				}
				pat.P = v
			default:
				if pat.O != dict.None && pat.O != v {
					conflict = true
				}
				pat.O = v
			}
		}
		op.ex.work++ // index probe
		if conflict {
			return
		}
		var matches []store.IDTriple
		matches, op.scratch = op.ex.st.MatchBuf(pat, op.scratch)
		op.ex.scan += len(matches)
		op.ex.work += float64(len(matches))
		for _, m := range matches {
			ok := true
			for _, ch := range pp.checks {
				if tripleValue(m, ch[0]) != tripleValue(m, ch[1]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for j := 0; j < nin; j++ {
				outCols[j] = append(outCols[j], in.cols[j][r])
			}
			for k, pos := range pp.newCols {
				outCols[nin+k] = append(outCols[nin+k], tripleValue(m, pos))
			}
			outN++
		}
	}
	if in.sel != nil {
		for _, r := range in.sel {
			probeRow(r)
		}
	} else {
		for r := 0; r < in.n; r++ {
			probeRow(int32(r))
		}
	}
	if outN == 0 {
		return nil
	}
	return &colBatch{schema: pp.outVars, cols: outCols, n: outN}
}

// --- Filter ------------------------------------------------------------------

// colFilterOp refines the selection vector. Column-vs-constant comparisons
// (the common FILTER shape) are memoized per dictionary ID, so each
// distinct value is decoded and compared once per operator instead of once
// per row.
type colFilterOp struct {
	ex      *executor
	child   colOperator
	filters []compiledFilter
	memoCol []int              // column a memoizable filter keys on, -1 otherwise
	memo    []map[dict.ID]bool // per-filter verdict cache (nil when not memoizable)
}

func newColFilterOp(ex *executor, child colOperator, cs []compiledFilter) *colFilterOp {
	op := &colFilterOp{ex: ex, child: child, filters: cs,
		memoCol: make([]int, len(cs)), memo: make([]map[dict.ID]bool, len(cs))}
	for i, c := range cs {
		col := -1
		switch {
		case c.leftCol >= 0 && c.rightCol < 0:
			col = c.leftCol
		case c.leftCol < 0 && c.rightCol >= 0:
			col = c.rightCol
		case c.leftCol >= 0 && c.leftCol == c.rightCol:
			col = c.leftCol
		}
		op.memoCol[i] = col
		if col >= 0 {
			op.memo[i] = make(map[dict.ID]bool)
		}
	}
	return op
}

func (op *colFilterOp) vars() []sparql.Var { return op.child.vars() }

func (op *colFilterOp) pass(d *dict.Dict, b *colBatch, r int32) bool {
	for i := range op.filters {
		c := &op.filters[i]
		if col := op.memoCol[i]; col >= 0 {
			id := b.cols[col][r]
			if id == dict.None {
				// Unbound column: no comparison holds (see evalFilters).
				return false
			}
			v, ok := op.memo[i][id]
			if !ok {
				lt, rt := c.leftTerm, c.rightTerm
				if c.leftCol >= 0 {
					lt = d.Decode(id)
				}
				if c.rightCol >= 0 {
					rt = d.Decode(id)
				}
				v = evalCompare(lt, c.op, rt)
				op.memo[i][id] = v
			}
			if !v {
				return false
			}
			continue
		}
		lt, rt := c.leftTerm, c.rightTerm
		if c.leftCol >= 0 {
			id := b.cols[c.leftCol][r]
			if id == dict.None {
				return false
			}
			lt = d.Decode(id)
		}
		if c.rightCol >= 0 {
			id := b.cols[c.rightCol][r]
			if id == dict.None {
				return false
			}
			rt = d.Decode(id)
		}
		if !evalCompare(lt, c.op, rt) {
			return false
		}
	}
	return true
}

func (op *colFilterOp) next() (*colBatch, error) {
	d := op.ex.st.Dict()
	for {
		b, err := op.child.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		var sel []int32
		if b.sel != nil {
			sel = make([]int32, 0, len(b.sel))
			for _, r := range b.sel {
				op.ex.work++
				op.ex.kern.FilterRows++
				if op.pass(d, b, r) {
					sel = append(sel, r)
				}
			}
		} else {
			sel = make([]int32, 0, b.n)
			for r := int32(0); int(r) < b.n; r++ {
				op.ex.work++
				op.ex.kern.FilterRows++
				if op.pass(d, b, r) {
					sel = append(sel, r)
				}
			}
		}
		if len(sel) > 0 {
			op.ex.kern.Batches++
			return &colBatch{schema: b.schema, cols: b.cols, n: b.n, sel: sel}, nil
		}
	}
}

// --- Hash / sort-merge / cross joins -----------------------------------------

// colSharedCols returns (leftCol, rightCol) pairs of same-variable columns.
func colSharedCols(lvars, rvars []sparql.Var) [][2]int {
	var out [][2]int
	for li, v := range lvars {
		if ri := varIndexOf(rvars, v); ri >= 0 {
			out = append(out, [2]int{li, ri})
		}
	}
	return out
}

// colSrc names the source of one output column of a columnar join.
type colSrc struct {
	fromBuild bool
	col       int
}

// colJoinLayout computes the output schema and per-column sources of a
// hash join, preserving the streaming engine's left/right orientation
// rules (schemaFor/combineRows) exactly.
func colJoinLayout(build, probe *colRelation, swapped bool) ([]sparql.Var, []colSrc) {
	if swapped {
		vars, extra := outputSchema(&relation{vars: probe.vars}, &relation{vars: build.vars})
		src := make([]colSrc, 0, len(vars))
		for i := range probe.vars {
			src = append(src, colSrc{fromBuild: false, col: i})
		}
		for _, ci := range extra {
			src = append(src, colSrc{fromBuild: true, col: ci})
		}
		return vars, src
	}
	vars, extra := outputSchema(&relation{vars: build.vars}, &relation{vars: probe.vars})
	src := make([]colSrc, 0, len(vars))
	for i := range build.vars {
		src = append(src, colSrc{fromBuild: true, col: i})
	}
	for _, ci := range extra {
		src = append(src, colSrc{fromBuild: false, col: ci})
	}
	return vars, src
}

// colJoinOp is the columnar pipeline breaker for composite-composite
// joins: drain both children, run the columnar kernel, stream windows.
type colJoinOp struct {
	ex          *executor
	op          plan.PhysOp
	left, right colOperator
	joined      bool
	outVars     []sparql.Var
	out         *colRelation
	pos         int
}

func (op *colJoinOp) vars() []sparql.Var {
	if op.outVars == nil {
		op.outVars, _ = outputSchema(
			&relation{vars: op.left.vars()},
			&relation{vars: op.right.vars()},
		)
	}
	return op.outVars
}

func (op *colJoinOp) next() (*colBatch, error) {
	if !op.joined {
		op.joined = true
		l, err := op.ex.drainCol(op.left)
		if err != nil {
			return nil, err
		}
		r, err := op.ex.drainCol(op.right)
		if err != nil {
			return nil, err
		}
		var out *colRelation
		shared := colSharedCols(l.vars, r.vars)
		switch {
		case op.op == plan.PhysCross || len(shared) == 0:
			out, err = op.ex.colCross(l, r)
		case op.op == plan.PhysMergeJoin:
			out, err = op.ex.colMergeJoin(l, r, shared)
		default:
			out, err = op.ex.colHashJoin(l, r, shared)
		}
		if err != nil {
			return nil, err
		}
		op.ex.cout += float64(out.n)
		op.outVars = out.vars
		op.out = out
	}
	if op.pos >= op.out.n {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > op.out.n {
		end = op.out.n
	}
	b := op.out.window(op.pos, end)
	op.pos = end
	op.ex.kern.Batches++
	return b, nil
}

// colHashJoin is the columnar hash join: same build-side rule, same probe
// order and same per-tuple accounting as the row kernel, with the probe
// loop appending output column-wise and parallelized over the same probe
// morsels.
func (ex *executor) colHashJoin(l, r *colRelation, shared [][2]int) (*colRelation, error) {
	swapped := false
	if r.n < l.n {
		l, r = r, l
		swapped = true
		for i := range shared {
			shared[i][0], shared[i][1] = shared[i][1], shared[i][0]
		}
	}
	// l is the build side now.
	type key [4]dict.ID
	if len(shared) > 4 {
		panic("exec: more than 4 shared join variables")
	}
	mkBuild := func(row int32) key {
		var k key
		for i, sc := range shared {
			k[i] = l.cols[sc[0]][row]
		}
		return k
	}
	mkProbe := func(row int) key {
		var k key
		for i, sc := range shared {
			k[i] = r.cols[sc[1]][row]
		}
		return k
	}
	table := make(map[key][]int32, l.n)
	for i := 0; i < l.n; i++ {
		if i%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		k := mkBuild(int32(i))
		table[k] = append(table[k], int32(i))
	}
	ex.work += float64(l.n) // build cost
	vars, srcs := colJoinLayout(l, r, swapped)
	nBuildCols := 0
	for _, s := range srcs {
		if s.fromBuild {
			nBuildCols++
		}
	}
	out := &colRelation{vars: vars, cols: make([][]dict.ID, len(vars))}
	probeRows := func(cx *executor, lo, hi int, dst *colRelation) error {
		steps := 0
		for rr := lo; rr < hi; rr++ {
			steps++
			if steps%cancelCheckRows == 0 {
				if err := cx.cancelled(); err != nil {
					return err
				}
			}
			cx.work++ // probe cost
			cx.kern.HashProbeRows++
			for _, li := range table[mkProbe(rr)] {
				for j, s := range srcs {
					if s.fromBuild {
						dst.cols[j] = append(dst.cols[j], l.cols[s.col][li])
					} else {
						dst.cols[j] = append(dst.cols[j], r.cols[s.col][rr])
					}
				}
				dst.n++
				cx.work++ // emit cost
			}
		}
		return nil
	}
	// Build once, probe in parallel over the same morsel split as the row
	// kernel, merging outputs and counters in morsel order.
	if ex.parallelism() > 1 {
		if morsels := morselize(r.n, ex.morselSize()); len(morsels) > 1 {
			outs := make([]*colRelation, len(morsels))
			counters := make([]execCounters, len(morsels))
			workers, err := ex.runMorsels(len(morsels), func(i int) error {
				wex := ex.workerExecutor()
				dst := &colRelation{vars: vars, cols: make([][]dict.ID, len(vars))}
				if err := probeRows(wex, morsels[i][0], morsels[i][1], dst); err != nil {
					return err
				}
				outs[i] = dst
				counters[i] = wex.counters()
				return nil
			})
			if err != nil {
				return nil, err
			}
			ex.mergeMorsels(counters, workers)
			for _, o := range outs {
				for j := range out.cols {
					out.cols[j] = append(out.cols[j], o.cols[j]...)
				}
				out.n += o.n
			}
			return out, nil
		}
	}
	if err := probeRows(ex, 0, r.n, out); err != nil {
		return nil, err
	}
	return out, nil
}

// colMergeJoin sorts permutation arrays over both inputs with the row
// kernel's comparator (identical comparator outcomes give the identical
// arrangement) and merges equal-key runs, emitting column-wise.
func (ex *executor) colMergeJoin(l, r *colRelation, shared [][2]int) (out *colRelation, err error) {
	defer recoverSortAbort(&err)
	lCmp := func(a, b int32) int {
		for _, sc := range shared {
			x, y := l.cols[sc[0]][a], l.cols[sc[0]][b]
			if x != y {
				if x < y {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	rCmp := func(a, b int32) int {
		for _, sc := range shared {
			x, y := r.cols[sc[1]][a], r.cols[sc[1]][b]
			if x != y {
				if x < y {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	lrCmp := func(a, b int32) int {
		for _, sc := range shared {
			x, y := l.cols[sc[0]][a], r.cols[sc[1]][b]
			if x != y {
				if x < y {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	lperm := make([]int32, l.n)
	for i := range lperm {
		lperm[i] = int32(i)
	}
	rperm := make([]int32, r.n)
	for i := range rperm {
		rperm[i] = int32(i)
	}
	sort.Slice(lperm, ex.lessWithCancel(func(i, j int) bool { return lCmp(lperm[i], lperm[j]) < 0 }))
	sort.Slice(rperm, ex.lessWithCancel(func(i, j int) bool { return rCmp(rperm[i], rperm[j]) < 0 }))
	ex.work += float64(l.n + r.n) // sort pass (linear proxy)
	vars, extra := outputSchema(&relation{vars: l.vars}, &relation{vars: r.vars})
	out = &colRelation{vars: vars, cols: make([][]dict.ID, len(vars))}
	nl := len(l.vars)
	steps := 0
	i, j := 0, 0
	for i < l.n && j < r.n {
		steps++
		if steps%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		c := lrCmp(lperm[i], rperm[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			i2 := i
			for i2 < l.n && lCmp(lperm[i2], lperm[i]) == 0 {
				i2++
			}
			j2 := j
			for j2 < r.n && rCmp(rperm[j2], rperm[j]) == 0 {
				j2++
			}
			for x := i; x < i2; x++ {
				for y := j; y < j2; y++ {
					steps++
					if steps%cancelCheckRows == 0 {
						if err := ex.cancelled(); err != nil {
							return nil, err
						}
					}
					lr, rr := lperm[x], rperm[y]
					for ci := 0; ci < nl; ci++ {
						out.cols[ci] = append(out.cols[ci], l.cols[ci][lr])
					}
					for k, ci := range extra {
						out.cols[nl+k] = append(out.cols[nl+k], r.cols[ci][rr])
					}
					out.n++
					ex.work++
					ex.kern.MergeRows++
				}
			}
			i, j = i2, j2
		}
	}
	return out, nil
}

// colCross is the columnar cross product.
func (ex *executor) colCross(l, r *colRelation) (*colRelation, error) {
	vars, extra := outputSchema(&relation{vars: l.vars}, &relation{vars: r.vars})
	out := &colRelation{vars: vars, cols: make([][]dict.ID, len(vars))}
	nl := len(l.vars)
	steps := 0
	for i := 0; i < l.n; i++ {
		steps++
		if steps%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		for j := 0; j < r.n; j++ {
			steps++
			if steps%cancelCheckRows == 0 {
				if err := ex.cancelled(); err != nil {
					return nil, err
				}
			}
			for ci := 0; ci < nl; ci++ {
				out.cols[ci] = append(out.cols[ci], l.cols[ci][i])
			}
			for k, ci := range extra {
				out.cols[nl+k] = append(out.cols[nl+k], r.cols[ci][j])
			}
			out.n++
			ex.work++
		}
	}
	return out, nil
}

// --- Order (blocking) --------------------------------------------------------

// colOrderOp drains its input and stable-sorts a permutation array by the
// ORDER BY keys, then gathers the columns once in sorted order.
type colOrderOp struct {
	ex     *executor
	child  colOperator
	keys   []sparql.OrderKey
	sorted bool
	out    *colRelation
	pos    int
}

func (op *colOrderOp) vars() []sparql.Var { return op.child.vars() }

func (op *colOrderOp) next() (*colBatch, error) {
	if !op.sorted {
		op.sorted = true
		rel, err := op.ex.drainCol(op.child)
		if err != nil {
			return nil, err
		}
		if err := op.sortRel(rel); err != nil {
			return nil, err
		}
		op.ex.work += float64(rel.n)
		op.out = rel
	}
	if op.pos >= op.out.n {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > op.out.n {
		end = op.out.n
	}
	b := op.out.window(op.pos, end)
	op.pos = end
	op.ex.kern.Batches++
	return b, nil
}

// sortRel permutes rel into ORDER BY order (stable, so the result is the
// unique keys-then-input-order arrangement the row engines produce).
func (op *colOrderOp) sortRel(rel *colRelation) (err error) {
	d := op.ex.st.Dict()
	cols := make([]int, len(op.keys))
	for i, k := range op.keys {
		ci := varIndexOf(rel.vars, k.Var)
		if ci < 0 {
			return fmt.Errorf("exec: ORDER BY unbound variable ?%s", k.Var)
		}
		cols[i] = ci
	}
	perm := make([]int32, rel.n)
	for i := range perm {
		perm[i] = int32(i)
	}
	defer recoverSortAbort(&err)
	sort.SliceStable(perm, op.ex.lessWithCancel(func(i, j int) bool {
		a, b := perm[i], perm[j]
		for x, ci := range cols {
			va, vb := rel.cols[ci][a], rel.cols[ci][b]
			if va == vb {
				continue
			}
			c := compareOrder(d, va, vb)
			if c == 0 {
				continue
			}
			if op.keys[x].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}))
	op.ex.kern.GatherRows += rel.n
	for j := range rel.cols {
		src := rel.cols[j]
		dst := make([]dict.ID, rel.n)
		for i, p := range perm {
			dst[i] = src[p]
		}
		rel.cols[j] = dst
	}
	return nil
}

// --- Project -----------------------------------------------------------------

// colProjectOp reorders column references — a free operation in columnar
// layout (no per-row copying).
type colProjectOp struct {
	child   colOperator
	outVars []sparql.Var
	cols    []int
}

func (op *colProjectOp) vars() []sparql.Var { return op.outVars }

func (op *colProjectOp) next() (*colBatch, error) {
	b, err := op.child.next()
	if err != nil || b == nil {
		return nil, err
	}
	cols := make([][]dict.ID, len(op.cols))
	for j, ci := range op.cols {
		cols[j] = b.cols[ci]
	}
	return &colBatch{schema: op.outVars, cols: cols, n: b.n, sel: b.sel}, nil
}

// --- Distinct ----------------------------------------------------------------

// colDistinctOp keeps first occurrences, refining the selection vector.
type colDistinctOp struct {
	ex     *executor
	child  colOperator
	seen   map[string]bool
	keyBuf []byte
}

func (op *colDistinctOp) vars() []sparql.Var { return op.child.vars() }

func (op *colDistinctOp) keep(b *colBatch, r int32) bool {
	op.keyBuf = op.keyBuf[:0]
	for j := range b.cols {
		id := b.cols[j][r]
		op.keyBuf = append(op.keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	k := string(op.keyBuf)
	if op.seen[k] {
		return false
	}
	op.seen[k] = true
	return true
}

func (op *colDistinctOp) next() (*colBatch, error) {
	for {
		b, err := op.child.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		var sel []int32
		if b.sel != nil {
			sel = make([]int32, 0, len(b.sel))
			for _, r := range b.sel {
				if op.keep(b, r) {
					sel = append(sel, r)
				}
				op.ex.work++
			}
		} else {
			sel = make([]int32, 0, b.n)
			for r := int32(0); int(r) < b.n; r++ {
				if op.keep(b, r) {
					sel = append(sel, r)
				}
				op.ex.work++
			}
		}
		if len(sel) > 0 {
			return &colBatch{schema: b.schema, cols: b.cols, n: b.n, sel: sel}, nil
		}
	}
}

// --- Limit -------------------------------------------------------------------

// colLimitOp replicates limitOp's offset/limit/drain semantics over live
// row counts.
type colLimitOp struct {
	child     colOperator
	limit     int
	offset    int
	earlyStop bool
	skipped   int
	emitted   int
	drained   bool
}

func (op *colLimitOp) vars() []sparql.Var { return op.child.vars() }

func (op *colLimitOp) next() (*colBatch, error) {
	for op.limit < 0 || op.emitted < op.limit {
		b, err := op.child.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			op.drained = true
			return nil, nil
		}
		n := b.live()
		if skip := op.offset - op.skipped; skip > 0 {
			if n <= skip {
				op.skipped += n
				continue
			}
			op.skipped += skip
			b = b.sliceLive(skip, n)
			n -= skip
		}
		if op.limit >= 0 {
			if rest := op.limit - op.emitted; n > rest {
				b = b.sliceLive(0, rest)
				n = rest
			}
		}
		op.emitted += n
		return b, nil
	}
	if !op.drained {
		op.drained = true
		if !op.earlyStop {
			for {
				b, err := op.child.next()
				if err != nil {
					return nil, err
				}
				if b == nil {
					break
				}
			}
		}
	}
	return nil, nil
}

// --- Parallel pipeline operator ----------------------------------------------

// colParallelOp is the columnar twin of parallelOp: the same precompiled
// pipeline stages and morsel split, with columnar per-morsel chains whose
// outputs merge column-wise in morsel order.
type colParallelOp struct {
	ex     *executor
	source *plan.CompiledPattern
	stages []pipeStage
	nparts int
	ran    bool
	out    *colRelation
	pos    int
}

func (ex *executor) newColParallelOp(top *plan.PhysNode) (colOperator, error) {
	src := top.ParallelSource.Leaf
	stages, err := compilePipeline(top)
	if err != nil {
		return nil, err
	}
	parts := ex.pipelineMorsels(src, len(stages))
	if parts <= 1 {
		return ex.colBuildNode(top)
	}
	return &colParallelOp{ex: ex, source: src, stages: stages, nparts: parts}, nil
}

// buildColMorselChain instantiates the columnar operator chain for one
// morsel over the shared precompiled stages.
func buildColMorselChain(wex *executor, stages []pipeStage, cursor *store.Scan) colOperator {
	var op colOperator
	for i := range stages {
		st := &stages[i]
		switch st.node.Op {
		case plan.PhysIndexScan:
			op = &colScanOp{ex: wex, outVars: st.outVars, cursor: cursor, plan: st.scan}
		case plan.PhysIndexProbe:
			op = &colProbeOp{ex: wex, child: op, plan: st.probe}
		case plan.PhysFilter:
			op = newColFilterOp(wex, op, st.filters)
		case plan.PhysProject:
			op = &colProjectOp{child: op, outVars: st.outVars, cols: st.cols}
		}
	}
	return op
}

func (op *colParallelOp) vars() []sparql.Var { return op.stages[len(op.stages)-1].outVars }

func (op *colParallelOp) next() (*colBatch, error) {
	if !op.ran {
		op.ran = true
		if err := op.run(); err != nil {
			return nil, err
		}
	}
	if op.out == nil || op.pos >= op.out.n {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > op.out.n {
		end = op.out.n
	}
	b := op.out.window(op.pos, end)
	op.pos = end
	op.ex.kern.Batches++
	return b, nil
}

func (op *colParallelOp) run() error {
	ex := op.ex
	parts := ex.st.ScanPartitions(op.source.Pat, op.nparts)
	if parts == nil {
		return nil
	}
	outs := make([]*colRelation, len(parts))
	counters := make([]execCounters, len(parts))
	workers, err := ex.runMorsels(len(parts), func(i int) error {
		wex := ex.workerExecutor()
		chain := buildColMorselChain(wex, op.stages, parts[i])
		rel, err := wex.drainCol(chain)
		if err != nil {
			return err
		}
		outs[i] = rel
		counters[i] = wex.counters()
		return nil
	})
	if err != nil {
		return err
	}
	ex.mergeMorsels(counters, workers)
	merged := &colRelation{vars: op.vars(), cols: make([][]dict.ID, len(op.vars()))}
	for _, o := range outs {
		for j := range merged.cols {
			merged.cols[j] = append(merged.cols[j], o.cols[j]...)
		}
		merged.n += o.n
	}
	op.out = merged
	return nil
}
