package obs

import (
	"sync"
	"time"
)

// QueryTrace is one traced query as retained by the service's recent-trace
// ring: request provenance (query text, plan signature, cache hit,
// snapshot generation), scheduling (admission wait), the Result-level
// accounting, and the full span tree.
type QueryTrace struct {
	ID   uint64    `json:"id"`
	Time time.Time `json:"time"`
	// Endpoint is the service entry point ("query", "execute"); Query is
	// the canonical query/template text; Template the prepared-template
	// name ("" for ad-hoc queries).
	Endpoint string `json:"endpoint"`
	Query    string `json:"query"`
	Template string `json:"template,omitempty"`

	PlanSignature string `json:"plan_signature"`
	CacheHit      bool   `json:"cache_hit"`
	Generation    uint64 `json:"generation"`

	// AdmissionWaitUs is the time the request spent in admission control
	// before a pool token was available.
	AdmissionWaitUs int64 `json:"admission_wait_us"`
	DurationUs      int64 `json:"duration_us"`

	Rows    int     `json:"rows"`
	Cout    float64 `json:"cout"`
	Work    float64 `json:"work"`
	Scanned int     `json:"scanned"`

	// Slow marks a trace retained by the slow-query threshold; Sampled
	// marks one retained by the 1-in-N sampler (both can be set).
	Slow    bool `json:"slow"`
	Sampled bool `json:"sampled"`

	Root *Span `json:"spans"`
}

// Ring is a fixed-capacity ring buffer of the most recent query traces,
// safe for concurrent use. Adds are O(1); Recent returns newest first.
type Ring struct {
	mu   sync.Mutex
	buf  []*QueryTrace
	next uint64 // total adds; next slot is next % cap
}

// NewRing returns a ring keeping the last n traces (n < 1 keeps 64).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 64
	}
	return &Ring{buf: make([]*QueryTrace, n)}
}

// Add assigns t the next trace ID and inserts it, evicting the oldest
// entry once the ring is full.
func (r *Ring) Add(t *QueryTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	t.ID = r.next
	r.buf[int((r.next-1)%uint64(len(r.buf)))] = t
}

// Total returns the number of traces ever added (retained or evicted).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Recent returns up to n retained traces, newest first (n < 1 means all
// retained).
func (r *Ring) Recent(n int) []*QueryTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := int(r.next)
	if kept > len(r.buf) {
		kept = len(r.buf)
	}
	if n < 1 || n > kept {
		n = kept
	}
	out := make([]*QueryTrace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[int((r.next-1-uint64(i))%uint64(len(r.buf)))])
	}
	return out
}
