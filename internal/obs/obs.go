// Package obs is the execution-trace layer of the observability stack: a
// per-query span tree recording, for every physical operator the engines
// ran, the wall time spent inside it, the rows and batches it emitted, and
// the exact Cout/Work/Scanned counter deltas attributable to its subtree —
// plus, for operators that ran under the morsel driver, a per-morsel
// breakdown with worker assignment.
//
// The design keeps the disabled path free: exec only builds spans (and the
// wrapper operators feeding them) when Options.Trace is non-nil, so a run
// without a collector executes byte-for-byte the pre-trace operator tree —
// no wrappers, no per-tuple checks, no allocations (asserted by the
// zero-overhead tests in internal/exec).
//
// Accounting is exact, not sampled: every engine counter increment happens
// inside some operator's next() frame, the wrapper around that operator
// records the counter delta across the frame, and nesting makes each
// span's totals inclusive of its children. Finalize then derives exclusive
// (Self*) values as inclusive minus the children's inclusive totals. All
// increments are per-tuple integers far below 2^53, so the root span's
// inclusive totals equal the run's Result accounting bit-for-bit and the
// Self* values sum back to it — the invariant the trace-correctness suite
// asserts across engines, parallelism levels and leapfrog plans.
package obs

import (
	"fmt"
	"strings"
	"time"
)

// Span is one operator's observed execution. Cout/Work/Scanned/WallNs are
// inclusive of Children; the Self* fields (filled by Finalize) are this
// operator's exclusive share. A span produced by a morsel-driven parallel
// operator has no children — the pipeline ran whole-chain-per-morsel on
// workers — and carries the per-morsel breakdown instead.
type Span struct {
	// Op is the physical operator name (plan.PhysOp.String()); Detail is
	// the operator's full EXPLAIN line (pattern, filters, schema).
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`

	// Calls counts next() pulls (including the final exhausted one);
	// Batches counts non-empty batches returned; Rows counts rows emitted.
	Calls   int   `json:"calls"`
	Batches int   `json:"batches"`
	Rows    int64 `json:"rows"`

	// Inclusive totals: wall time inside this operator's next() frames and
	// the engine counter deltas recorded across them (children included).
	WallNs  int64   `json:"wall_ns"`
	Cout    float64 `json:"cout"`
	Work    float64 `json:"work"`
	Scanned int64   `json:"scanned"`

	// Self* are the exclusive values (inclusive minus children's
	// inclusive), derived by Finalize. Summed over the whole tree they
	// reproduce the root's inclusive totals exactly.
	SelfWallNs  int64   `json:"self_wall_ns"`
	SelfCout    float64 `json:"self_cout"`
	SelfWork    float64 `json:"self_work"`
	SelfScanned int64   `json:"self_scanned"`

	// Workers is the peak worker count the operator's morsel runs used (0
	// when it never ran a parallel morsel loop); Morsels is the per-morsel
	// breakdown in morsel order.
	Workers int           `json:"workers,omitempty"`
	Morsels []MorselStats `json:"morsels,omitempty"`

	Children []*Span `json:"children,omitempty"`
}

// MorselStats is one morsel's share of a parallel operator's work: which
// worker ran it, how long it took, and its counter contribution. Counter
// sums over a span's morsels are part of the span's inclusive totals (the
// driver merges them in morsel order), so they participate in the same
// exactness invariant.
type MorselStats struct {
	Index   int     `json:"index"`
	Worker  int     `json:"worker"`
	WallNs  int64   `json:"wall_ns"`
	Cout    float64 `json:"cout"`
	Work    float64 `json:"work"`
	Scanned int64   `json:"scanned"`
}

// Collector receives the finalized span tree of one traced execution.
// Implementations must be cheap: Collect is called once per traced query,
// on the query's goroutine, after the Result is complete.
type Collector interface {
	Collect(root *Span)
}

// Capture is the trivial collector: it keeps the last collected root.
type Capture struct {
	Root *Span
}

// Collect stores root as the captured trace.
func (c *Capture) Collect(root *Span) { c.Root = root }

// Finalize computes the Self* fields of every span in the tree: inclusive
// totals minus the sum of the children's inclusive totals. It is
// idempotent only on a freshly recorded tree; exec calls it exactly once
// before handing the root to the collector.
func Finalize(root *Span) {
	if root == nil {
		return
	}
	var childWall, childScanned int64
	var childCout, childWork float64
	for _, c := range root.Children {
		Finalize(c)
		childWall += c.WallNs
		childCout += c.Cout
		childWork += c.Work
		childScanned += c.Scanned
	}
	root.SelfWallNs = root.WallNs - childWall
	root.SelfCout = root.Cout - childCout
	root.SelfWork = root.Work - childWork
	root.SelfScanned = root.Scanned - childScanned
}

// Sum returns the tree's Self* totals — after Finalize these equal the
// root's inclusive totals, which in turn equal the run's Result
// accounting. The trace-correctness tests assert both equalities.
func Sum(root *Span) (cout, work float64, scanned int64) {
	if root == nil {
		return 0, 0, 0
	}
	cout, work, scanned = root.SelfCout, root.SelfWork, root.SelfScanned
	for _, c := range root.Children {
		cc, cw, cs := Sum(c)
		cout += cc
		work += cw
		scanned += cs
	}
	return cout, work, scanned
}

// Render draws the span tree as an EXPLAIN ANALYZE listing: the operator's
// EXPLAIN line annotated with its observed metrics, children indented, and
// parallel operators followed by their per-morsel breakdown.
func Render(root *Span) string {
	var b strings.Builder
	renderSpan(&b, root, 0)
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	if s == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	line := s.Detail
	if line == "" {
		line = s.Op
	}
	fmt.Fprintf(b, "%s%s\n", indent, line)
	fmt.Fprintf(b, "%s  (actual: rows=%d batches=%d calls=%d wall=%s cout=%.0f work=%.0f scanned=%d",
		indent, s.Rows, s.Batches, s.Calls, time.Duration(s.WallNs), s.Cout, s.Work, s.Scanned)
	if s.Workers > 0 {
		fmt.Fprintf(b, " morsels=%d workers=%d", len(s.Morsels), s.Workers)
	}
	b.WriteString(")\n")
	for _, m := range s.Morsels {
		fmt.Fprintf(b, "%s  [morsel %d worker %d: wall=%s cout=%.0f work=%.0f scanned=%d]\n",
			indent, m.Index, m.Worker, time.Duration(m.WallNs), m.Cout, m.Work, m.Scanned)
	}
	for _, c := range s.Children {
		renderSpan(b, c, depth+1)
	}
}
