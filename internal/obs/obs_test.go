package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// tree builds a three-level span tree with known inclusive totals:
//
//	root (cout 10, work 30, scanned 7, wall 100)
//	├── left (cout 6, work 18, scanned 5, wall 60)
//	│   └── leaf (cout 2, work 8, scanned 5, wall 25)
//	└── right (cout 1, work 4, scanned 2, wall 20)
func tree() *Span {
	leaf := &Span{Op: "IndexScan", WallNs: 25, Cout: 2, Work: 8, Scanned: 5}
	left := &Span{Op: "HashJoin", WallNs: 60, Cout: 6, Work: 18, Scanned: 5, Children: []*Span{leaf}}
	right := &Span{Op: "IndexScan", WallNs: 20, Cout: 1, Work: 4, Scanned: 2}
	return &Span{Op: "Project", WallNs: 100, Cout: 10, Work: 30, Scanned: 7, Children: []*Span{left, right}}
}

func TestFinalizeDerivesExclusiveValues(t *testing.T) {
	root := tree()
	Finalize(root)
	checks := []struct {
		name    string
		s       *Span
		wall    int64
		cout    float64
		work    float64
		scanned int64
	}{
		{"root", root, 20, 3, 8, 0},
		{"left", root.Children[0], 35, 4, 10, 0},
		{"leaf", root.Children[0].Children[0], 25, 2, 8, 5},
		{"right", root.Children[1], 20, 1, 4, 2},
	}
	for _, c := range checks {
		if c.s.SelfWallNs != c.wall || c.s.SelfCout != c.cout || c.s.SelfWork != c.work || c.s.SelfScanned != c.scanned {
			t.Errorf("%s Self* = (wall=%d cout=%v work=%v scanned=%d), want (wall=%d cout=%v work=%v scanned=%d)",
				c.name, c.s.SelfWallNs, c.s.SelfCout, c.s.SelfWork, c.s.SelfScanned,
				c.wall, c.cout, c.work, c.scanned)
		}
	}
}

func TestSumReproducesRootInclusive(t *testing.T) {
	root := tree()
	Finalize(root)
	cout, work, scanned := Sum(root)
	if cout != root.Cout || work != root.Work || scanned != root.Scanned {
		t.Fatalf("Sum = (cout=%v work=%v scanned=%d), want root inclusive (cout=%v work=%v scanned=%d)",
			cout, work, scanned, root.Cout, root.Work, root.Scanned)
	}
	if c, w, s := Sum(nil); c != 0 || w != 0 || s != 0 {
		t.Fatalf("Sum(nil) = (%v %v %d), want zeros", c, w, s)
	}
	Finalize(nil) // must not panic
}

func TestRenderListsEverySpan(t *testing.T) {
	root := tree()
	root.Children[1].Workers = 2
	root.Children[1].Morsels = []MorselStats{
		{Index: 0, Worker: 1, WallNs: 10, Cout: 1, Work: 2, Scanned: 1},
		{Index: 1, Worker: 0, WallNs: 10, Work: 2, Scanned: 1},
	}
	out := Render(root)
	for _, want := range []string{
		"Project", "HashJoin", "IndexScan",
		"(actual: rows=0 batches=0 calls=0",
		"cout=10 work=30 scanned=7",
		"morsels=2 workers=2",
		"[morsel 0 worker 1:",
		"[morsel 1 worker 0:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	// Children are indented one level deeper than their parent.
	if !strings.Contains(out, "\n  HashJoin") || !strings.Contains(out, "\n    IndexScan") {
		t.Errorf("rendering not indented by depth:\n%s", out)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	root := tree()
	Finalize(root)
	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Op != root.Op || back.Cout != root.Cout || len(back.Children) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestRingRetentionAndOrder(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(&QueryTrace{Endpoint: "execute"})
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	got := r.Recent(10)
	if len(got) != 3 {
		t.Fatalf("ring of 3 returned %d traces", len(got))
	}
	// Newest first, IDs assigned in admission order.
	for i, tr := range got {
		if want := uint64(5 - i); tr.ID != want {
			t.Fatalf("trace %d has ID %d, want %d", i, tr.ID, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].ID != 5 {
		t.Fatalf("Recent(2) = %+v", got)
	}
	// n < 1 means "all retained".
	if got := r.Recent(0); len(got) != 3 {
		t.Fatalf("Recent(0) returned %d traces, want all 3", len(got))
	}
}

func TestRingDefaultsTinyCapacity(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 70; i++ {
		r.Add(&QueryTrace{})
	}
	if got := len(r.Recent(1000)); got != 64 {
		t.Fatalf("default ring kept %d traces, want 64", got)
	}
}
