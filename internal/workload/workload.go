// Package workload drives benchmark workloads: it executes a query template
// over a set of parameter bindings, collects per-execution measurements
// (wall time, deterministic work, measured Cout, result size, plan
// signature) and aggregates them the way the paper's tables do (q10,
// median, q90, average), including the multi-group stability experiment of
// E2.
package workload

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/stats"
	"repro/internal/store"
)

// Measurement is the record of one query execution.
type Measurement struct {
	Binding   sparql.Binding
	Runtime   time.Duration // wall-clock
	Work      float64       // deterministic work units (noise-free runtime proxy)
	Cout      float64       // measured sum of intermediate result sizes
	EstCost   float64       // optimizer-estimated Cout
	Rows      int
	Signature string // executed plan's canonical signature
}

// Metric extracts a scalar from a measurement for aggregation.
type Metric func(Measurement) float64

// Built-in metrics.
var (
	// MetricWork is the deterministic work counter; the default for
	// reproducible experiments.
	MetricWork Metric = func(m Measurement) float64 { return m.Work }
	// MetricRuntime is wall-clock milliseconds.
	MetricRuntime Metric = func(m Measurement) float64 { return float64(m.Runtime) / float64(time.Millisecond) }
	// MetricCout is the measured cost-function value.
	MetricCout Metric = func(m Measurement) float64 { return m.Cout }
)

// Executor abstracts one way of turning a (template, binding) pair into a
// Measurement. Runner is the direct in-process path; the query service
// provides another implementation that goes through its prepared-template
// and plan-cache machinery, so workloads can be driven through either path
// for apples-to-apples comparison.
type Executor interface {
	ExecuteTemplate(tmpl *sparql.Query, b sparql.Binding) (Measurement, error)
}

// RunWith executes the template once per binding through ex, in order.
func RunWith(ex Executor, tmpl *sparql.Query, bindings []sparql.Binding) ([]Measurement, error) {
	out := make([]Measurement, 0, len(bindings))
	for i, b := range bindings {
		m, err := ex.ExecuteTemplate(tmpl, b)
		if err != nil {
			return nil, fmt.Errorf("workload: binding %d: %w", i, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// Runner executes templates against one store.
type Runner struct {
	Store *store.Store
	Opts  exec.Options
	// UseGreedy switches the optimizer to the greedy heuristic (ablation).
	UseGreedy bool
	// Repetitions > 1 executes each binding that many times and reports the
	// minimum wall-clock time (best-of-k de-noises Runtime; Work and Cout
	// are deterministic and unaffected).
	Repetitions int
}

// RunOnce executes the template with a single binding.
func (r *Runner) RunOnce(tmpl *sparql.Query, b sparql.Binding) (Measurement, error) {
	bound, err := tmpl.Bind(b)
	if err != nil {
		return Measurement{}, err
	}
	c, err := plan.Compile(bound, r.Store)
	if err != nil {
		return Measurement{}, err
	}
	est := plan.NewEstimator(r.Store)
	var p *plan.Plan
	if r.UseGreedy {
		p, err = plan.OptimizeGreedy(c, est)
	} else {
		p, err = plan.Optimize(c, est)
	}
	if err != nil {
		return Measurement{}, err
	}
	reps := r.Repetitions
	if reps < 1 {
		reps = 1
	}
	var res *exec.Result
	var best time.Duration
	for i := 0; i < reps; i++ {
		out, err := exec.Run(c, p, r.Store, r.Opts)
		if err != nil {
			return Measurement{}, err
		}
		if res == nil || out.Duration < best {
			best = out.Duration
		}
		res = out
	}
	return Measurement{
		Binding:   b,
		Runtime:   best,
		Work:      res.Work,
		Cout:      res.Cout,
		EstCost:   p.EstCost,
		Rows:      len(res.Rows),
		Signature: p.Signature,
	}, nil
}

// ExecuteTemplate implements Executor with the direct path (RunOnce).
func (r *Runner) ExecuteTemplate(tmpl *sparql.Query, b sparql.Binding) (Measurement, error) {
	return r.RunOnce(tmpl, b)
}

// Run executes the template once per binding.
func (r *Runner) Run(tmpl *sparql.Query, bindings []sparql.Binding) ([]Measurement, error) {
	return RunWith(r, tmpl, bindings)
}

// Values extracts the metric series from measurements.
func Values(ms []Measurement, metric Metric) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = metric(m)
	}
	return out
}

// Summarize aggregates a measurement series under the metric.
func Summarize(ms []Measurement, metric Metric) stats.Summary {
	return stats.Summarize(Values(ms, metric))
}

// DistinctPlans returns the distinct plan signatures observed, with counts.
func DistinctPlans(ms []Measurement) map[string]int {
	out := map[string]int{}
	for _, m := range ms {
		out[m.Signature]++
	}
	return out
}

// GroupResult is the aggregate of one binding group (one row block of the
// paper's E2 table).
type GroupResult struct {
	Summary      stats.Summary
	Measurements []Measurement
}

// StabilityResult is the outcome of the E2-style multi-group experiment.
type StabilityResult struct {
	Groups []GroupResult
	// Deviation of per-group aggregates across groups, as max relative
	// deviation from the cross-group mean.
	AvgDeviation    float64
	MedianDeviation float64
	Q10Deviation    float64
	Q90Deviation    float64
}

// GroupStability draws k independent groups of n bindings from the sampler
// and aggregates each separately — the paper's E2 experiment ("we sample 4
// independent groups of parameter bindings (100 bindings in each group)").
func (r *Runner) GroupStability(tmpl *sparql.Query, sampler core.Sampler, k, n int, metric Metric) (*StabilityResult, error) {
	if k < 2 || n < 1 {
		return nil, fmt.Errorf("workload: need k >= 2 groups and n >= 1 bindings")
	}
	res := &StabilityResult{}
	var avgs, medians, q10s, q90s []float64
	for g := 0; g < k; g++ {
		ms, err := r.Run(tmpl, sampler.Sample(n))
		if err != nil {
			return nil, err
		}
		sum := Summarize(ms, metric)
		res.Groups = append(res.Groups, GroupResult{Summary: sum, Measurements: ms})
		avgs = append(avgs, sum.Mean)
		medians = append(medians, sum.Median)
		q10s = append(q10s, sum.Q10)
		q90s = append(q90s, sum.Q90)
	}
	res.AvgDeviation = stats.MaxRelativeDeviation(avgs)
	res.MedianDeviation = stats.MaxRelativeDeviation(medians)
	res.Q10Deviation = stats.MaxRelativeDeviation(q10s)
	res.Q90Deviation = stats.MaxRelativeDeviation(q90s)
	return res, nil
}
