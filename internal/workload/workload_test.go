package workload

import (
	"testing"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sparql"
	"repro/internal/store"
)

func testRunner(t testing.TB) (*Runner, *store.Store) {
	t.Helper()
	st, _, err := bsbm.BuildStore(bsbm.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &Runner{Store: st, Opts: exec.Options{}}, st
}

func TestRunOnce(t *testing.T) {
	r, st := testRunner(t)
	dom, err := core.ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.RunOnce(bsbm.Q4(), dom.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Signature == "" || m.Work <= 0 {
		t.Fatalf("measurement incomplete: %+v", m)
	}
	if m.Runtime <= 0 {
		t.Fatal("zero runtime")
	}
}

func TestRunOnceErrors(t *testing.T) {
	r, _ := testRunner(t)
	// Missing binding.
	if _, err := r.RunOnce(bsbm.Q4(), sparql.Binding{}); err == nil {
		t.Fatal("expected bind error")
	}
}

func TestRunSeries(t *testing.T) {
	r, st := testRunner(t)
	dom, err := core.ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewUniformSampler(dom, 1)
	ms, err := r.Run(bsbm.Q4(), s.Sample(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 20 {
		t.Fatalf("measurements = %d", len(ms))
	}
	sum := Summarize(ms, MetricWork)
	if sum.N != 20 || sum.Max < sum.Min {
		t.Fatalf("summary wrong: %+v", sum)
	}
	if len(Values(ms, MetricCout)) != 20 {
		t.Fatal("Values length wrong")
	}
	plans := DistinctPlans(ms)
	total := 0
	for _, n := range plans {
		total += n
	}
	if total != 20 {
		t.Fatalf("plan counts sum to %d", total)
	}
}

func TestGroupStability(t *testing.T) {
	r, st := testRunner(t)
	dom, err := core.ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewUniformSampler(dom, 42)
	res, err := r.GroupStability(bsbm.Q4(), s, 3, 15, MetricWork)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	for _, g := range res.Groups {
		if g.Summary.N != 15 {
			t.Fatalf("group size = %d", g.Summary.N)
		}
	}
	if res.AvgDeviation < 0 || res.MedianDeviation < 0 {
		t.Fatal("negative deviation")
	}
	// Bad arguments.
	if _, err := r.GroupStability(bsbm.Q4(), s, 1, 10, MetricWork); err == nil {
		t.Fatal("expected error for k < 2")
	}
	if _, err := r.GroupStability(bsbm.Q4(), s, 2, 0, MetricWork); err == nil {
		t.Fatal("expected error for n < 1")
	}
}

func TestGreedyRunnerWorks(t *testing.T) {
	r, st := testRunner(t)
	r.UseGreedy = true
	dom, err := core.ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.RunOnce(bsbm.Q4(), dom.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows < 0 {
		t.Fatal("impossible")
	}
}

func TestMetricRuntimePositive(t *testing.T) {
	r, st := testRunner(t)
	dom, err := core.ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.RunOnce(bsbm.Q4(), dom.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if MetricRuntime(m) <= 0 {
		t.Fatal("runtime metric should be positive")
	}
	if MetricCout(m) != m.Cout {
		t.Fatal("cout metric mismatch")
	}
}

func TestRepetitionsBestOfK(t *testing.T) {
	r, st := testRunner(t)
	r.Repetitions = 3
	dom, err := core.ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.RunOnce(bsbm.Q4(), dom.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Runtime <= 0 {
		t.Fatal("best-of-k runtime should be positive")
	}
	// Work is deterministic: a single-rep run must agree.
	r1 := &Runner{Store: st, Opts: exec.Options{}}
	m1, err := r1.RunOnce(bsbm.Q4(), dom.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Work != m1.Work || m.Cout != m1.Cout {
		t.Fatalf("repetitions changed deterministic metrics: %v/%v vs %v/%v",
			m.Work, m.Cout, m1.Work, m1.Cout)
	}
}
