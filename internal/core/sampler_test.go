package core

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Regression: samplers over empty domains/classes used to panic with
// rand.Intn(0) mid-pipeline; they must return nil instead.
func TestUniformSamplerEmptyDomain(t *testing.T) {
	cases := []*Domain{
		{}, // no parameters at all
		{Params: []sparql.Param{"p"}, Values: [][]rdf.Term{{}}}, // parameter with no candidates
	}
	for i, dom := range cases {
		s := NewUniformSampler(dom, 1)
		if got := s.Sample(5); got != nil {
			t.Errorf("case %d: Sample over empty domain = %v, want nil", i, got)
		}
	}
}

func TestClassSamplerEmptyClass(t *testing.T) {
	s := NewClassSampler(&Class{}, 1)
	if got := s.Sample(5); got != nil {
		t.Errorf("Sample over empty class = %v, want nil", got)
	}
}

func TestSamplersRejectNonPositiveN(t *testing.T) {
	dom := &Domain{
		Params: []sparql.Param{"p"},
		Values: [][]rdf.Term{{rdf.NewIRI("http://x/a")}},
	}
	u := NewUniformSampler(dom, 1)
	if got := u.Sample(0); got != nil {
		t.Errorf("Sample(0) = %v, want nil", got)
	}
	if got := u.Sample(-3); got != nil {
		t.Errorf("Sample(-3) = %v, want nil", got)
	}
	c := NewClassSampler(&Class{Points: []Point{{Binding: sparql.Binding{"p": rdf.NewIRI("http://x/a")}}}}, 1)
	if got := c.Sample(-1); got != nil {
		t.Errorf("class Sample(-1) = %v, want nil", got)
	}
}

// Non-empty samplers still honor the n-bindings contract.
func TestSamplersDrawRequestedCount(t *testing.T) {
	dom := &Domain{
		Params: []sparql.Param{"p"},
		Values: [][]rdf.Term{{rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/b")}},
	}
	if got := NewUniformSampler(dom, 7).Sample(10); len(got) != 10 {
		t.Fatalf("uniform Sample(10) returned %d bindings", len(got))
	}
	cl := &Class{Points: []Point{
		{Binding: sparql.Binding{"p": rdf.NewIRI("http://x/a")}},
		{Binding: sparql.Binding{"p": rdf.NewIRI("http://x/b")}},
	}}
	if got := NewClassSampler(cl, 7).Sample(4); len(got) != 4 {
		t.Fatalf("class Sample(4) returned %d bindings", len(got))
	}
}
