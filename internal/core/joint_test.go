package core

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/snb"
	"repro/internal/sparql"
)

func TestExtractJointDomain(t *testing.T) {
	st, _ := snbStore(t)
	q1 := snb.Q1() // %Name × %Country — correlated
	joint, err := ExtractJointDomain(q1, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := ExtractDomain(q1, st)
	if err != nil {
		t.Fatal(err)
	}
	// The joint domain must be far smaller than the cross product: most
	// name×country combinations never occur (that's the correlation).
	if joint.Size() >= cross.Size() {
		t.Fatalf("joint %d >= cross %d", joint.Size(), cross.Size())
	}
	if joint.Size() == 0 {
		t.Fatal("empty joint domain")
	}
	// Every joint binding must produce a non-empty result.
	for i, b := range joint.Bindings {
		if i >= 25 {
			break
		}
		bound, err := q1.Bind(b)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := exec.Query(bound, st, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("joint binding %v produced no results", b)
		}
	}
}

func TestExtractJointDomainMaxRows(t *testing.T) {
	st, _ := snbStore(t)
	joint, err := ExtractJointDomain(snb.Q1(), st, 10)
	if err != nil {
		t.Fatal(err)
	}
	if joint.Size() != 10 {
		t.Fatalf("size = %d, want capped at 10", joint.Size())
	}
}

func TestExtractJointDomainErrors(t *testing.T) {
	st, _ := snbStore(t)
	if _, err := ExtractJointDomain(sparql.MustParse(`SELECT * WHERE { ?s ?p ?o . }`), st, 0); err == nil {
		t.Fatal("expected error for parameterless template")
	}
	q := sparql.MustParse(`SELECT * WHERE { ?s ?p ?o . FILTER(?o > %x) }`)
	if _, err := ExtractJointDomain(q, st, 0); err == nil {
		t.Fatal("expected error for filter-only parameter")
	}
	q2 := sparql.MustParse(`SELECT * WHERE { ?s <http://nowhere/p> %x . }`)
	if _, err := ExtractJointDomain(q2, st, 0); err == nil {
		t.Fatal("expected error for empty joint domain")
	}
}

func TestJointSampler(t *testing.T) {
	st, _ := snbStore(t)
	joint, err := ExtractJointDomain(snb.Q1(), st, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewJointSampler(joint, 3)
	got := s.Sample(100)
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	member := map[string]bool{}
	for _, b := range joint.Bindings {
		member[b["Name"].String()+"|"+b["Country"].String()] = true
	}
	for _, b := range got {
		if !member[b["Name"].String()+"|"+b["Country"].String()] {
			t.Fatal("sampled binding outside joint domain")
		}
	}
}

func TestAnalyzeBindings(t *testing.T) {
	st, _ := snbStore(t)
	joint, err := ExtractJointDomain(snb.Q1(), st, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeBindings(snb.Q1(), st, joint.Bindings, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) == 0 {
		t.Fatal("no points")
	}
	// Clustering the joint domain works end to end.
	cl := Cluster(a, ClusterOptions{})
	if err := cl.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(cl.Classes) < 2 {
		t.Fatalf("joint domain of a correlated query should split: %s", cl.Summary())
	}
	// Capping.
	capped, err := AnalyzeBindings(snb.Q1(), st, joint.Bindings, AnalyzeOptions{MaxBindings: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Exhaustive || len(capped.Points) != 5 {
		t.Fatalf("cap failed: exhaustive=%v points=%d", capped.Exhaustive, len(capped.Points))
	}
	// Errors.
	if _, err := AnalyzeBindings(snb.Q1(), st, nil, AnalyzeOptions{}); err == nil {
		t.Fatal("expected error for empty bindings")
	}
}
