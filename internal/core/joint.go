package core

import (
	"fmt"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/sparql"
	"repro/internal/store"
)

// JointDomain is the set of parameter combinations that actually co-occur
// in the data. For correlated datasets (the paper's name×country example)
// most combinations of the cross-product domain match nothing; the joint
// domain is obtained by executing the template with every parameter
// replaced by a fresh variable, so each member binding is guaranteed to
// produce a non-empty result.
type JointDomain struct {
	Params   []sparql.Param
	Bindings []sparql.Binding
}

// Size returns the number of co-occurring combinations.
func (d *JointDomain) Size() int { return len(d.Bindings) }

// ExtractJointDomain enumerates the co-occurring parameter combinations of
// tmpl against st by running the "domain query" (parameters as variables,
// SELECT DISTINCT). maxRows caps the enumeration (0 means unlimited).
// Parameters that appear only in FILTERs are rejected, as in ExtractDomain.
func ExtractJointDomain(tmpl *sparql.Query, st *store.Store, maxRows int) (*JointDomain, error) {
	params := tmpl.Params()
	if len(params) == 0 {
		return nil, fmt.Errorf("core: template has no parameters")
	}
	// Parameters must occur in at least one pattern position.
	inPattern := map[sparql.Param]bool{}
	for _, tp := range tmpl.Where {
		for _, n := range []sparql.Node{tp.S, tp.P, tp.O} {
			if n.Kind == sparql.NodeParam {
				inPattern[n.Param] = true
			}
		}
	}
	for _, p := range params {
		if !inPattern[p] {
			return nil, fmt.Errorf("core: parameter %%%s occurs only in FILTER; joint domain not extractable", p)
		}
	}
	// Fresh variable names that cannot clash with user variables ('%' is
	// not a legal variable character in our grammar, but Go strings can
	// hold anything — use a reserved prefix instead and verify).
	varFor := make(map[sparql.Param]sparql.Var, len(params))
	existing := map[sparql.Var]bool{}
	for _, v := range tmpl.Vars() {
		existing[v] = true
	}
	for _, p := range params {
		v := sparql.Var("_param_" + string(p))
		for existing[v] {
			v += "_"
		}
		varFor[p] = v
	}
	subst := func(n sparql.Node) sparql.Node {
		if n.Kind == sparql.NodeParam {
			return sparql.VarNode(varFor[n.Param])
		}
		return n
	}
	dq := &sparql.Query{Distinct: true, Limit: maxRows}
	for _, p := range params {
		dq.Select = append(dq.Select, varFor[p])
	}
	for _, tp := range tmpl.Where {
		dq.Where = append(dq.Where, sparql.TriplePattern{
			S: subst(tp.S), P: subst(tp.P), O: subst(tp.O),
		})
	}
	for _, f := range tmpl.Filters {
		dq.Filters = append(dq.Filters, sparql.Filter{
			Left: subst(f.Left), Op: f.Op, Right: subst(f.Right),
		})
	}
	res, _, err := exec.Query(dq, st, exec.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: joint domain query: %w", err)
	}
	d := &JointDomain{Params: params}
	dict := st.Dict()
	for _, row := range res.Rows {
		b := make(sparql.Binding, len(params))
		for i, p := range params {
			b[p] = dict.Decode(row[i])
		}
		d.Bindings = append(d.Bindings, b)
	}
	if len(d.Bindings) == 0 {
		return nil, fmt.Errorf("core: joint domain is empty")
	}
	return d, nil
}

// JointSampler draws uniformly from the joint domain.
type JointSampler struct {
	dom *JointDomain
	rng *rand.Rand
}

// NewJointSampler returns a sampler over the joint domain.
func NewJointSampler(dom *JointDomain, seed int64) *JointSampler {
	return &JointSampler{dom: dom, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws n co-occurring bindings (with replacement).
func (s *JointSampler) Sample(n int) []sparql.Binding {
	out := make([]sparql.Binding, n)
	for i := range out {
		out[i] = s.dom.Bindings[s.rng.Intn(len(s.dom.Bindings))]
	}
	return out
}

// AnalyzeBindings analyzes an explicit binding list (e.g. a joint domain)
// instead of a cross-product Domain.
func AnalyzeBindings(tmpl *sparql.Query, st *store.Store, bindings []sparql.Binding, opts AnalyzeOptions) (*Analysis, error) {
	if len(bindings) == 0 {
		return nil, fmt.Errorf("core: no bindings to analyze")
	}
	maxB := opts.MaxBindings
	if maxB <= 0 {
		maxB = DefaultMaxBindings
	}
	use := bindings
	exhaustive := true
	if len(bindings) > maxB {
		exhaustive = false
		idx := domainIndices(len(bindings), maxB, opts.Seed)
		use = make([]sparql.Binding, len(idx))
		for i, j := range idx {
			use[i] = bindings[j]
		}
	}
	a := &Analysis{Template: tmpl, Exhaustive: exhaustive}
	points, err := analyzeBindings(tmpl, st, use, opts)
	if err != nil {
		return nil, err
	}
	a.Points = append(a.Points, points...)
	return a, nil
}
