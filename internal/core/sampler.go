package core

import (
	"fmt"
	"math/rand"

	"repro/internal/sparql"
	"repro/internal/store"
)

// Sampler produces parameter bindings for workload generation.
type Sampler interface {
	// Sample returns n bindings drawn with replacement, or nil when the
	// underlying domain is empty (there is nothing to draw from).
	Sample(n int) []sparql.Binding
}

// UniformSampler draws bindings uniformly at random (with replacement) from
// the cross-product domain — the standard technique the paper shows to be
// inadequate (it is the baseline in every experiment).
type UniformSampler struct {
	dom *Domain
	rng *rand.Rand
}

// NewUniformSampler returns a uniform sampler over dom.
func NewUniformSampler(dom *Domain, seed int64) *UniformSampler {
	return &UniformSampler{dom: dom, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws n bindings uniformly from the domain. It returns nil when
// the domain is empty (or n <= 0) rather than crashing: ExtractDomain
// rejects empty domains, but hand-built or filtered domains can reach
// samplers mid-pipeline.
func (s *UniformSampler) Sample(n int) []sparql.Binding {
	size := s.dom.Size()
	if size == 0 || n <= 0 {
		return nil
	}
	out := make([]sparql.Binding, n)
	for i := range out {
		out[i] = s.dom.At(s.rng.Intn(size))
	}
	return out
}

// ClassSampler draws bindings uniformly from within a single parameter
// class — the paper's proposal: "the workload generator can produce
// separate parameter bindings by sampling them from every parameter class
// independently, thus effectively splitting the query into several cases".
type ClassSampler struct {
	class *Class
	rng   *rand.Rand
}

// NewClassSampler returns a sampler over one class.
func NewClassSampler(c *Class, seed int64) *ClassSampler {
	return &ClassSampler{class: c, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws n member bindings (with replacement). It returns nil when
// the class has no members (or n <= 0) rather than crashing.
func (s *ClassSampler) Sample(n int) []sparql.Binding {
	if len(s.class.Points) == 0 || n <= 0 {
		return nil
	}
	out := make([]sparql.Binding, n)
	for i := range out {
		out[i] = s.class.Points[s.rng.Intn(len(s.class.Points))].Binding
	}
	return out
}

// CuratedQuery is one per-class sub-workload: the original template plus a
// class-restricted sampler. BSBM-BI Q4 becomes Q4a (specific types) and Q4b
// (generic types).
type CuratedQuery struct {
	Name    string
	Class   *Class
	Sampler *ClassSampler
}

// Curate turns a clustering into named per-class sub-workloads.
func Curate(prefix string, c *Clustering, seed int64) []CuratedQuery {
	out := make([]CuratedQuery, len(c.Classes))
	for i := range c.Classes {
		cl := &c.Classes[i]
		out[i] = CuratedQuery{
			Name:    Label(prefix, i),
			Class:   cl,
			Sampler: NewClassSampler(cl, seed+int64(i)),
		}
	}
	return out
}

// Pipeline bundles the full paper workflow: extract → analyze → cluster.
type Pipeline struct {
	Analyze AnalyzeOptions
	Cluster ClusterOptions
}

// Run executes the pipeline for tmpl against st.
func (p Pipeline) Run(tmpl *sparql.Query, st *store.Store) (*Analysis, *Clustering, error) {
	dom, err := ExtractDomain(tmpl, st)
	if err != nil {
		return nil, nil, err
	}
	a, err := Analyze(tmpl, st, dom, p.Analyze)
	if err != nil {
		return nil, nil, err
	}
	cl := Cluster(a, p.Cluster)
	if len(cl.Classes) == 0 {
		return nil, nil, fmt.Errorf("core: clustering produced no classes")
	}
	return a, cl, nil
}
