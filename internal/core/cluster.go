package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ClusterOptions configures the domain clustering.
type ClusterOptions struct {
	// Epsilon is the relative width of a cost band: two costs c1 <= c2 fall
	// in the same band when c2 <= c1·(1+Epsilon)·bandSlack. Bands are
	// geometric: band(c) = floor(log(c/c0) / log(1+Epsilon)). Zero means
	// DefaultEpsilon.
	Epsilon float64
	// MinClassSize drops (or merges, per MergeSmall) classes with fewer
	// members — the paper's "tune the workload generator such that it does
	// not generate parameters from the certain class Sj". Zero keeps all.
	MinClassSize int
	// MergeSmall, when true, merges an undersized class into the nearest
	// band of the same plan signature instead of dropping it.
	MergeSmall bool
}

// DefaultEpsilon is the default relative cost-band width. Within a band
// costs differ by at most a factor 2 — conservative for "same cost", yet
// wide enough that classes are populated.
const DefaultEpsilon = 1.0

// Class is one parameter class Si of the paper's formal problem: a maximal
// set of bindings sharing the optimal plan (condition a) and a cost band
// (condition b); distinct classes differ in signature or band (condition c,
// with cost bands standing in for the plan-identity part when shapes
// coincide — see the package comment).
type Class struct {
	Signature string  // canonical optimal-plan signature
	Band      int     // geometric cost-band index
	CostLo    float64 // minimum observed optimal cost in the class
	CostHi    float64 // maximum observed optimal cost in the class
	Points    []Point // member bindings with their analysis records
}

// Label renders a short class identifier like "Q4a", "Q4b" given a query
// name prefix; classes are labelled in increasing cost order.
func Label(prefix string, i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	if i < len(letters) {
		return fmt.Sprintf("%s%c", prefix, letters[i])
	}
	return fmt.Sprintf("%s_%d", prefix, i)
}

// Clustering is the result of Cluster: the classes, plus any points dropped
// by MinClassSize policy.
type Clustering struct {
	Classes []Class
	Dropped []Point
	Epsilon float64
}

// Cluster partitions the analyzed bindings into parameter classes.
// Classes are returned sorted by (mean cost, signature), so the cheap class
// of a bimodal query comes first (Q4a before Q4b).
func Cluster(a *Analysis, opts ClusterOptions) *Clustering {
	eps := opts.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	type key struct {
		sig  string
		band int
	}
	band := func(cost float64) int {
		if cost <= 0 {
			return -1 // empty-result plans: their own band
		}
		return int(math.Floor(math.Log(cost) / math.Log(1+eps)))
	}
	groups := map[key]*Class{}
	for _, pt := range a.Points {
		k := key{sig: pt.Signature, band: band(pt.Cost)}
		cl, ok := groups[k]
		if !ok {
			cl = &Class{Signature: pt.Signature, Band: k.band, CostLo: pt.Cost, CostHi: pt.Cost}
			groups[k] = cl
		}
		if pt.Cost < cl.CostLo {
			cl.CostLo = pt.Cost
		}
		if pt.Cost > cl.CostHi {
			cl.CostHi = pt.Cost
		}
		cl.Points = append(cl.Points, pt)
	}
	out := &Clustering{Epsilon: eps}
	var classes []*Class
	for _, cl := range groups {
		classes = append(classes, cl)
	}
	// Deterministic order before any merge policy runs (map iteration is
	// randomized).
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].Signature != classes[j].Signature {
			return classes[i].Signature < classes[j].Signature
		}
		return classes[i].Band < classes[j].Band
	})
	// Enforce MinClassSize.
	if opts.MinClassSize > 1 {
		var kept []*Class
		for _, cl := range classes {
			if len(cl.Points) >= opts.MinClassSize {
				kept = append(kept, cl)
				continue
			}
			if opts.MergeSmall {
				tgt := nearestSameSig(kept, cl)
				if tgt == nil {
					tgt = nearestSameSig(classes, cl) // may pick a later kept one
				}
				if tgt != nil && tgt != cl && len(tgt.Points) >= opts.MinClassSize {
					mergeInto(tgt, cl)
					continue
				}
			}
			out.Dropped = append(out.Dropped, cl.Points...)
		}
		classes = kept
	}
	sort.Slice(classes, func(i, j int) bool {
		mi, mj := meanCost(classes[i]), meanCost(classes[j])
		if mi != mj {
			return mi < mj
		}
		return classes[i].Signature < classes[j].Signature
	})
	for _, cl := range classes {
		out.Classes = append(out.Classes, *cl)
	}
	return out
}

func meanCost(c *Class) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range c.Points {
		s += p.Cost
	}
	return s / float64(len(c.Points))
}

func nearestSameSig(cands []*Class, cl *Class) *Class {
	var best *Class
	bestDist := math.MaxInt
	for _, c := range cands {
		if c == cl || c.Signature != cl.Signature {
			continue
		}
		d := c.Band - cl.Band
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

func mergeInto(dst, src *Class) {
	dst.Points = append(dst.Points, src.Points...)
	if src.CostLo < dst.CostLo {
		dst.CostLo = src.CostLo
	}
	if src.CostHi > dst.CostHi {
		dst.CostHi = src.CostHi
	}
}

// Verify checks the paper's conditions over a clustering:
//
//	(a) all members of a class share one optimal-plan signature;
//	(b) all members' costs fit the class's (1+ε)-relative band;
//	(c) no two classes share both signature and band.
//
// It returns nil when all hold.
func (c *Clustering) Verify() error {
	type key struct {
		sig  string
		band int
	}
	seen := map[key]bool{}
	for i, cl := range c.Classes {
		k := key{cl.Signature, cl.Band}
		if seen[k] {
			return fmt.Errorf("core: condition (c) violated: duplicate class (sig=%s band=%d)", cl.Signature, cl.Band)
		}
		seen[k] = true
		for _, pt := range cl.Points {
			if pt.Signature != cl.Signature {
				return fmt.Errorf("core: condition (a) violated in class %d: %s vs %s", i, pt.Signature, cl.Signature)
			}
		}
		if cl.CostLo > 0 && cl.CostHi > cl.CostLo*(1+c.Epsilon)*(1+c.Epsilon) {
			return fmt.Errorf("core: condition (b) violated in class %d: costs [%g, %g] exceed band ε=%g",
				i, cl.CostLo, cl.CostHi, c.Epsilon)
		}
	}
	return nil
}

// Summary renders a human-readable clustering overview.
func (c *Clustering) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d classes (ε=%.2f, %d dropped points)\n", len(c.Classes), c.Epsilon, len(c.Dropped))
	for i, cl := range c.Classes {
		fmt.Fprintf(&b, "  class %-3s n=%-6d cost=[%.3g, %.3g] plan=%s\n",
			Label("S", i), len(cl.Points), cl.CostLo, cl.CostHi, cl.Signature)
	}
	return b.String()
}
