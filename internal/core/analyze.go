package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Point is the analysis record of one parameter binding: the optimal plan's
// canonical signature and estimated Cout for the template instantiated with
// that binding.
type Point struct {
	Binding   sparql.Binding
	Signature string
	Cost      float64 // estimated Cout of the optimal plan
	Card      float64 // estimated result cardinality
}

// Analysis is the per-binding plan/cost analysis of a template's domain.
type Analysis struct {
	Template *sparql.Query
	Domain   *Domain
	Points   []Point
	// Exhaustive reports whether every domain binding was analyzed (true
	// when the domain is not larger than the configured cap).
	Exhaustive bool
}

// AnalyzeOptions configures Analyze.
type AnalyzeOptions struct {
	// MaxBindings caps how many bindings are analyzed; a larger domain is
	// sampled deterministically. Zero means DefaultMaxBindings.
	MaxBindings int
	// Seed drives the domain subsampling (not the analysis itself, which is
	// deterministic).
	Seed int64
	// UseGreedy switches the per-binding optimizer from exact DP to the
	// greedy heuristic (for the ablation study).
	UseGreedy bool
}

// DefaultMaxBindings caps analysis work for large cross-product domains.
const DefaultMaxBindings = 2000

// Analyze instantiates the template for (a sample of) the domain and
// records the optimal plan signature and cost per binding.
func Analyze(tmpl *sparql.Query, st *store.Store, dom *Domain, opts AnalyzeOptions) (*Analysis, error) {
	if dom == nil {
		var err error
		dom, err = ExtractDomain(tmpl, st)
		if err != nil {
			return nil, err
		}
	}
	maxB := opts.MaxBindings
	if maxB <= 0 {
		maxB = DefaultMaxBindings
	}
	a := &Analysis{Template: tmpl, Domain: dom}
	size := dom.Size()
	indices := domainIndices(size, maxB, opts.Seed)
	a.Exhaustive = size <= maxB
	bindings := make([]sparql.Binding, len(indices))
	for i, idx := range indices {
		bindings[i] = dom.At(idx)
	}
	if err := analyzeInto(a, tmpl, st, bindings, opts.UseGreedy); err != nil {
		return nil, err
	}
	return a, nil
}

// analyzeInto optimizes the template per binding and appends the analysis
// points to a.
func analyzeInto(a *Analysis, tmpl *sparql.Query, st *store.Store, bindings []sparql.Binding, useGreedy bool) error {
	est := plan.NewEstimator(st)
	for i, b := range bindings {
		bound, err := tmpl.Bind(b)
		if err != nil {
			return err
		}
		c, err := plan.Compile(bound, st)
		if err != nil {
			return err
		}
		var p *plan.Plan
		if useGreedy {
			p, err = plan.OptimizeGreedy(c, est)
		} else {
			p, err = plan.Optimize(c, est)
		}
		if err != nil {
			return fmt.Errorf("core: optimizing binding %d: %w", i, err)
		}
		a.Points = append(a.Points, Point{
			Binding:   b,
			Signature: p.Signature,
			Cost:      p.EstCost,
			Card:      p.EstCard,
		})
	}
	return nil
}

// domainIndices returns the binding indices to analyze: all of them when
// size <= maxB, otherwise a deterministic uniform sample without
// replacement.
func domainIndices(size, maxB int, seed int64) []int {
	if size <= maxB {
		out := make([]int, size)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int]bool, maxB)
	out := make([]int, 0, maxB)
	for len(out) < maxB {
		i := rng.Intn(size)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
