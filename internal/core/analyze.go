package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Point is the analysis record of one parameter binding: the optimal plan's
// canonical signature and estimated Cout for the template instantiated with
// that binding.
type Point struct {
	Binding   sparql.Binding
	Signature string
	Cost      float64 // estimated Cout of the optimal plan
	Card      float64 // estimated result cardinality
}

// Analysis is the per-binding plan/cost analysis of a template's domain.
type Analysis struct {
	Template *sparql.Query
	Domain   *Domain
	Points   []Point
	// Exhaustive reports whether every domain binding was analyzed (true
	// when the domain is not larger than the configured cap).
	Exhaustive bool
}

// AnalyzeOptions configures Analyze.
type AnalyzeOptions struct {
	// MaxBindings caps how many bindings are analyzed; a larger domain is
	// sampled deterministically. Zero means DefaultMaxBindings.
	MaxBindings int
	// Seed drives the domain subsampling (not the analysis itself, which is
	// deterministic).
	Seed int64
	// UseGreedy switches the per-binding optimizer from exact DP to the
	// greedy heuristic (for the ablation study).
	UseGreedy bool
	// Parallelism bounds the worker pool analyzing bindings. Bindings are
	// independent (each is compiled and optimized against the immutable
	// store), so they fan out across workers; results are written back by
	// binding index, making the output byte-identical to a serial run.
	// Zero means runtime.GOMAXPROCS(0); 1 forces serial analysis.
	Parallelism int
}

// DefaultMaxBindings caps analysis work for large cross-product domains.
const DefaultMaxBindings = 2000

// Analyze instantiates the template for (a sample of) the domain and
// records the optimal plan signature and cost per binding.
func Analyze(tmpl *sparql.Query, st *store.Store, dom *Domain, opts AnalyzeOptions) (*Analysis, error) {
	if dom == nil {
		var err error
		dom, err = ExtractDomain(tmpl, st)
		if err != nil {
			return nil, err
		}
	}
	maxB := opts.MaxBindings
	if maxB <= 0 {
		maxB = DefaultMaxBindings
	}
	a := &Analysis{Template: tmpl, Domain: dom}
	size := dom.Size()
	indices := domainIndices(size, maxB, opts.Seed)
	a.Exhaustive = size <= maxB
	bindings := make([]sparql.Binding, len(indices))
	for i, idx := range indices {
		bindings[i] = dom.At(idx)
	}
	points, err := analyzeBindings(tmpl, st, bindings, opts)
	if err != nil {
		return nil, err
	}
	a.Points = append(a.Points, points...)
	return a, nil
}

// analyzeBindings optimizes the template once per binding, fanning the
// independent bindings out across a bounded worker pool. Point i of the
// result always corresponds to bindings[i], so the output is byte-identical
// regardless of scheduling — parallel and serial runs agree exactly.
func analyzeBindings(tmpl *sparql.Query, st *store.Store, bindings []sparql.Binding, opts AnalyzeOptions) ([]Point, error) {
	points := make([]Point, len(bindings))
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(bindings) {
		workers = len(bindings)
	}
	if workers <= 1 {
		est := plan.NewEstimator(st)
		for i, b := range bindings {
			p, err := analyzeOne(tmpl, st, est, b, opts.UseGreedy)
			if err != nil {
				return nil, fmt.Errorf("core: optimizing binding %d: %w", i, err)
			}
			points[i] = p
		}
		return points, nil
	}
	var (
		next   atomic.Int64
		minErr atomic.Int64 // lowest failing binding index so far
		wg     sync.WaitGroup
	)
	minErr.Store(int64(len(bindings)))
	errs := make([]error, len(bindings)) // each index written by one worker
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The estimator only reads immutable store statistics, but give
			// each worker its own instance so future stateful estimators
			// (caching, sampling) stay race-free.
			est := plan.NewEstimator(st)
			for {
				i := int(next.Add(1)) - 1
				// Workers abandon only indices at or above the lowest
				// failure, so every lower index is still attempted and the
				// reported error is exactly the serial run's, regardless of
				// scheduling.
				if i >= len(bindings) || int64(i) >= minErr.Load() {
					return
				}
				p, err := analyzeOne(tmpl, st, est, bindings[i], opts.UseGreedy)
				if err != nil {
					errs[i] = fmt.Errorf("core: optimizing binding %d: %w", i, err)
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				points[i] = p
			}
		}()
	}
	wg.Wait()
	if idx := int(minErr.Load()); idx < len(bindings) {
		return nil, errs[idx]
	}
	return points, nil
}

// analyzeOne compiles and optimizes the template for one binding.
func analyzeOne(tmpl *sparql.Query, st *store.Store, est plan.Model, b sparql.Binding, useGreedy bool) (Point, error) {
	bound, err := tmpl.Bind(b)
	if err != nil {
		return Point{}, err
	}
	c, err := plan.Compile(bound, st)
	if err != nil {
		return Point{}, err
	}
	var p *plan.Plan
	if useGreedy {
		p, err = plan.OptimizeGreedy(c, est)
	} else {
		p, err = plan.Optimize(c, est)
	}
	if err != nil {
		return Point{}, err
	}
	return Point{
		Binding:   b,
		Signature: p.Signature,
		Cost:      p.EstCost,
		Card:      p.EstCard,
	}, nil
}

// domainIndices returns the binding indices to analyze: all of them when
// size <= maxB, otherwise a deterministic uniform sample without
// replacement.
func domainIndices(size, maxB int, seed int64) []int {
	if size <= maxB {
		out := make([]int, size)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int]bool, maxB)
	out := make([]int, 0, maxB)
	for len(out) < maxB {
		i := rng.Intn(size)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
