package core

import (
	"testing"

	"repro/internal/bsbm"
)

func TestStepSamplerBasics(t *testing.T) {
	st, _ := bsbmStore(t)
	dom, err := ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStepSampler(dom, 4, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Sample(400)
	if len(got) != 400 {
		t.Fatalf("len = %d", len(got))
	}
	// All samples must come from the domain.
	member := map[string]bool{}
	for i := 0; i < dom.Size(); i++ {
		member[dom.At(i)["ProductType"].String()] = true
	}
	for _, b := range got {
		if !member[b["ProductType"].String()] {
			t.Fatal("sample outside domain")
		}
	}
}

func TestStepSamplerSkew(t *testing.T) {
	st, _ := bsbmStore(t)
	dom, err := ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStepSampler(dom, 4, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With decay 0.3, the first quarter of the domain must be sampled far
	// more often than the last quarter.
	size := dom.Size()
	idxOf := map[string]int{}
	for i := 0; i < size; i++ {
		idxOf[dom.At(i)["ProductType"].String()] = i
	}
	first, last := 0, 0
	for _, b := range s.Sample(2000) {
		i := idxOf[b["ProductType"].String()]
		switch {
		case i < size/4:
			first++
		case i >= size*3/4:
			last++
		}
	}
	if first <= 2*last {
		t.Fatalf("step skew missing: first quarter %d, last quarter %d", first, last)
	}
}

func TestStepSamplerUniformDegenerate(t *testing.T) {
	st, _ := bsbmStore(t)
	dom, err := ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStepSampler(dom, 1, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sample(10)) != 10 {
		t.Fatal("degenerate sampler broken")
	}
}

func TestStepSamplerErrors(t *testing.T) {
	st, _ := bsbmStore(t)
	dom, err := ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStepSampler(dom, 0, 0.5, 1); err == nil {
		t.Fatal("steps=0 should fail")
	}
	if _, err := NewStepSampler(dom, dom.Size()+1, 0.5, 1); err == nil {
		t.Fatal("steps > size should fail")
	}
	if _, err := NewStepSampler(dom, 2, 0, 1); err == nil {
		t.Fatal("decay=0 should fail")
	}
	if _, err := NewStepSampler(dom, 2, 1.5, 1); err == nil {
		t.Fatal("decay>1 should fail")
	}
}
