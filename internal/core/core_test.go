package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bsbm"
	"repro/internal/rdf"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/store"
)

func bsbmStore(t testing.TB) (*store.Store, *bsbm.Dataset) {
	t.Helper()
	st, ds, err := bsbm.BuildStore(bsbm.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st, ds
}

func snbStore(t testing.TB) (*store.Store, *snb.Dataset) {
	t.Helper()
	st, ds, err := snb.BuildStore(snb.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st, ds
}

func TestExtractDomainSingleParam(t *testing.T) {
	st, ds := bsbmStore(t)
	dom, err := ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(dom.Params) != 1 || dom.Params[0] != "ProductType" {
		t.Fatalf("params = %v", dom.Params)
	}
	// The domain must contain every product type that actually types a
	// product — plus nothing else that never occurs as an rdf:type object.
	want := 0
	for i := range ds.Types {
		if ds.ProductsPerType[i] > 0 {
			want++
		}
	}
	// The type nodes themselves are typed bsbm:ProductType, so the class
	// IRI also occurs as an rdf:type object; and persons don't exist here.
	if len(dom.Values[0]) != want+1 {
		t.Fatalf("domain size = %d, want %d product types + 1 class IRI", len(dom.Values[0]), want)
	}
	if dom.Size() != len(dom.Values[0]) {
		t.Fatalf("Size = %d", dom.Size())
	}
}

func TestExtractDomainMultiParam(t *testing.T) {
	st, _ := snbStore(t)
	dom, err := ExtractDomain(snb.Q3(), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(dom.Params) != 3 {
		t.Fatalf("params = %v", dom.Params)
	}
	// Q3 has Person, CountryX, CountryY. Cross-product indexing At(i) must
	// enumerate all combinations without duplicates.
	seen := map[string]bool{}
	n := dom.Size()
	if n <= 0 {
		t.Fatal("empty cross domain")
	}
	cap := n
	if cap > 500 {
		cap = 500
	}
	for i := 0; i < cap; i++ {
		b := dom.At(i)
		key := ""
		for _, p := range dom.Params {
			key += b[p].String() + "|"
		}
		if seen[key] {
			t.Fatalf("duplicate binding at index %d", i)
		}
		seen[key] = true
	}
}

func TestExtractDomainIntersection(t *testing.T) {
	// A parameter used in two patterns gets the intersection of both
	// position domains: countries that are both visited and lived in.
	st, _ := snbStore(t)
	tmpl := sparql.MustParse(`
PREFIX sn: <http://snb.example.org/>
SELECT ?p WHERE {
  ?p sn:livesIn %C .
  ?q sn:hasBeenTo %C .
}`)
	dom, err := ExtractDomain(tmpl, st)
	if err != nil {
		t.Fatal(err)
	}
	livedIn, err := ExtractDomain(sparql.MustParse(`
PREFIX sn: <http://snb.example.org/>
SELECT ?p WHERE { ?p sn:livesIn %C . }`), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(dom.Values[0]) > len(livedIn.Values[0]) {
		t.Fatalf("intersection (%d) larger than one side (%d)", len(dom.Values[0]), len(livedIn.Values[0]))
	}
	if len(dom.Values[0]) == 0 {
		t.Fatal("empty intersection")
	}
}

func TestExtractDomainErrors(t *testing.T) {
	st, _ := bsbmStore(t)
	// No parameters.
	if _, err := ExtractDomain(sparql.MustParse(`SELECT * WHERE { ?s ?p ?o . }`), st); err == nil {
		t.Fatal("expected error for parameterless template")
	}
	// Filter-only parameter.
	q := sparql.MustParse(`SELECT * WHERE { ?s ?p ?o . FILTER(?o > %x) }`)
	if _, err := ExtractDomain(q, st); err == nil {
		t.Fatal("expected error for filter-only parameter")
	}
	// Empty domain: pattern whose constants don't occur.
	q2 := sparql.MustParse(`SELECT * WHERE { ?s <http://nowhere/p> %x . }`)
	if _, err := ExtractDomain(q2, st); err == nil {
		t.Fatal("expected error for empty domain")
	}
}

func TestAnalyzeExhaustiveSmallDomain(t *testing.T) {
	st, _ := bsbmStore(t)
	a, err := Analyze(bsbm.Q4(), st, nil, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Exhaustive {
		t.Fatal("small domain should be analyzed exhaustively")
	}
	if len(a.Points) != a.Domain.Size() {
		t.Fatalf("points = %d, domain = %d", len(a.Points), a.Domain.Size())
	}
	for _, pt := range a.Points {
		if pt.Signature == "" {
			t.Fatal("empty signature")
		}
		if pt.Cost < 0 {
			t.Fatalf("negative cost %v", pt.Cost)
		}
	}
}

func TestAnalyzeSampledLargeDomain(t *testing.T) {
	st, _ := snbStore(t)
	a, err := Analyze(snb.Q3(), st, nil, AnalyzeOptions{MaxBindings: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Exhaustive {
		t.Fatal("large domain should be sampled")
	}
	if len(a.Points) != 50 {
		t.Fatalf("points = %d, want 50", len(a.Points))
	}
	// Deterministic resample.
	b, err := Analyze(snb.Q3(), st, nil, AnalyzeOptions{MaxBindings: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].Signature != b.Points[i].Signature || a.Points[i].Cost != b.Points[i].Cost {
			t.Fatal("analysis not deterministic")
		}
	}
}

func TestClusterConditions(t *testing.T) {
	st, _ := bsbmStore(t)
	a, err := Analyze(bsbm.Q4(), st, nil, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl := Cluster(a, ClusterOptions{Epsilon: 1.0})
	if err := cl.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(cl.Classes) < 2 {
		t.Fatalf("Q4 must split into >= 2 classes (specific vs generic types), got %d\n%s",
			len(cl.Classes), cl.Summary())
	}
	// All points accounted for.
	total := len(cl.Dropped)
	for _, c := range cl.Classes {
		total += len(c.Points)
	}
	if total != len(a.Points) {
		t.Fatalf("clustering lost points: %d vs %d", total, len(a.Points))
	}
	// Classes ordered by cost.
	for i := 1; i < len(cl.Classes); i++ {
		if meanCostOf(cl.Classes[i-1]) > meanCostOf(cl.Classes[i]) {
			t.Fatal("classes not sorted by mean cost")
		}
	}
	if cl.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func meanCostOf(c Class) float64 {
	s := 0.0
	for _, p := range c.Points {
		s += p.Cost
	}
	return s / float64(len(c.Points))
}

func TestClusterCostBandWidth(t *testing.T) {
	st, _ := bsbmStore(t)
	a, err := Analyze(bsbm.Q4(), st, nil, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.25, 0.5, 1.0, 3.0} {
		cl := Cluster(a, ClusterOptions{Epsilon: eps})
		if err := cl.Verify(); err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		for _, c := range cl.Classes {
			if c.CostLo > 0 && c.CostHi/c.CostLo > (1+eps)*(1+1e-9) {
				t.Fatalf("eps=%v: class spread %v exceeds band", eps, c.CostHi/c.CostLo)
			}
		}
	}
	// Narrower epsilon gives at least as many classes.
	narrow := Cluster(a, ClusterOptions{Epsilon: 0.25})
	wide := Cluster(a, ClusterOptions{Epsilon: 3.0})
	if len(narrow.Classes) < len(wide.Classes) {
		t.Fatalf("narrow ε produced fewer classes (%d) than wide ε (%d)",
			len(narrow.Classes), len(wide.Classes))
	}
}

func TestClusterMinClassSize(t *testing.T) {
	st, _ := bsbmStore(t)
	a, err := Analyze(bsbm.Q4(), st, nil, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	drop := Cluster(a, ClusterOptions{Epsilon: 0.5, MinClassSize: 5})
	for _, c := range drop.Classes {
		if len(c.Points) < 5 {
			t.Fatalf("kept class with %d members", len(c.Points))
		}
	}
	merge := Cluster(a, ClusterOptions{Epsilon: 0.5, MinClassSize: 5, MergeSmall: true})
	if len(merge.Dropped) > len(drop.Dropped) {
		t.Fatal("merging should not drop more than dropping")
	}
}

func TestUniformSampler(t *testing.T) {
	st, _ := bsbmStore(t)
	dom, err := ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformSampler(dom, 7)
	got := s.Sample(200)
	if len(got) != 200 {
		t.Fatalf("len = %d", len(got))
	}
	distinct := map[string]bool{}
	for _, b := range got {
		if len(b) != 1 {
			t.Fatalf("binding has %d params", len(b))
		}
		distinct[b["ProductType"].String()] = true
	}
	if len(distinct) < 2 {
		t.Fatal("uniform sampler returned a single value 200 times")
	}
	// Determinism per seed.
	s2 := NewUniformSampler(dom, 7)
	got2 := s2.Sample(200)
	for i := range got {
		if got[i]["ProductType"] != got2[i]["ProductType"] {
			t.Fatal("sampler not deterministic per seed")
		}
	}
}

func TestClassSamplerStaysInClass(t *testing.T) {
	st, _ := bsbmStore(t)
	a, err := Analyze(bsbm.Q4(), st, nil, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl := Cluster(a, ClusterOptions{})
	cur := Curate("Q4", cl, 1)
	if len(cur) != len(cl.Classes) {
		t.Fatalf("curated = %d, classes = %d", len(cur), len(cl.Classes))
	}
	if cur[0].Name != "Q4a" || cur[1].Name != "Q4b" {
		t.Fatalf("labels = %s, %s", cur[0].Name, cur[1].Name)
	}
	for _, cq := range cur {
		members := map[string]bool{}
		for _, pt := range cq.Class.Points {
			members[pt.Binding["ProductType"].String()] = true
		}
		for _, b := range cq.Sampler.Sample(50) {
			if !members[b["ProductType"].String()] {
				t.Fatalf("%s: sampled binding outside class", cq.Name)
			}
		}
	}
}

func TestPipelineRun(t *testing.T) {
	st, _ := bsbmStore(t)
	a, cl, err := Pipeline{}.Run(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) == 0 || len(cl.Classes) == 0 {
		t.Fatal("pipeline produced nothing")
	}
}

func TestLabel(t *testing.T) {
	if Label("Q4", 0) != "Q4a" || Label("Q4", 1) != "Q4b" {
		t.Fatal("letter labels wrong")
	}
	if Label("Q", 26) != "Q_26" {
		t.Fatalf("overflow label = %s", Label("Q", 26))
	}
}

// Property: clustering is a partition — every analyzed point lands in
// exactly one class (or Dropped), for random epsilon.
func TestClusterPartitionProperty(t *testing.T) {
	st, _ := bsbmStore(t)
	a, err := Analyze(bsbm.Q4(), st, nil, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		eps := 0.1 + rng.Float64()*4
		cl := Cluster(a, ClusterOptions{Epsilon: eps})
		n := len(cl.Dropped)
		for _, c := range cl.Classes {
			n += len(c.Points)
		}
		if n != len(a.Points) {
			t.Fatalf("eps=%v: partition broken (%d vs %d)", eps, n, len(a.Points))
		}
		if err := cl.Verify(); err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
	}
}

func TestDomainAtCoversAll(t *testing.T) {
	// Small synthetic domain: At must enumerate the full cross product.
	dom := &Domain{
		Params: []sparql.Param{"a", "b"},
		Values: [][]rdf.Term{
			{rdf.NewLiteral("x"), rdf.NewLiteral("y")},
			{rdf.NewInteger(1), rdf.NewInteger(2), rdf.NewInteger(3)},
		},
	}
	if dom.Size() != 6 {
		t.Fatalf("Size = %d", dom.Size())
	}
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		b := dom.At(i)
		seen[fmt.Sprintf("%v|%v", b["a"], b["b"])] = true
	}
	if len(seen) != 6 {
		t.Fatalf("At enumerated %d distinct bindings, want 6", len(seen))
	}
}
