package core

import (
	"reflect"
	"testing"

	"repro/internal/bsbm"
	"repro/internal/snb"
)

// TestAnalyzeParallelMatchesSerial: the worker pool writes points back by
// binding index, so a parallel analysis must be byte-identical to the
// serial one — including the parameter classes clustered from it.
func TestAnalyzeParallelMatchesSerial(t *testing.T) {
	st, _ := bsbmStore(t)
	q4 := bsbm.Q4()
	dom, err := ExtractDomain(q4, st)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Analyze(q4, st, dom, AnalyzeOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 7} {
		par, err := Analyze(q4, st, dom, AnalyzeOptions{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Points, par.Points) {
			t.Fatalf("parallelism %d: points differ from serial", workers)
		}
		if par.Exhaustive != serial.Exhaustive {
			t.Fatalf("parallelism %d: exhaustive differs", workers)
		}
		cs, cp := Cluster(serial, ClusterOptions{}), Cluster(par, ClusterOptions{})
		if !reflect.DeepEqual(cs.Classes, cp.Classes) {
			t.Fatalf("parallelism %d: parameter classes differ from serial", workers)
		}
	}
}

// TestAnalyzeParallelSampledDomain: the deterministic subsample path must
// also agree across parallelism levels.
func TestAnalyzeParallelSampledDomain(t *testing.T) {
	st, _ := snbStore(t)
	q3 := snb.Q3()
	serial, err := Analyze(q3, st, nil, AnalyzeOptions{MaxBindings: 60, Seed: 9, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Analyze(q3, st, nil, AnalyzeOptions{MaxBindings: 60, Seed: 9, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Points, par.Points) {
		t.Fatal("sampled-domain points differ between serial and parallel")
	}
}

// TestAnalyzeBindingsParallel: the explicit-binding path (joint domains)
// goes through the same pool.
func TestAnalyzeBindingsParallel(t *testing.T) {
	st, _ := snbStore(t)
	q1 := snb.Q1()
	joint, err := ExtractJointDomain(q1, st, 80)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := AnalyzeBindings(q1, st, joint.Bindings, AnalyzeOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnalyzeBindings(q1, st, joint.Bindings, AnalyzeOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Points, par.Points) {
		t.Fatal("joint-domain points differ between serial and parallel")
	}
}

// TestAnalyzeParallelErrorPropagates: a failing binding must surface an
// error (not a panic or a silent zero Point) under parallelism.
func TestAnalyzeParallelErrorPropagates(t *testing.T) {
	st, _ := bsbmStore(t)
	dom, err := ExtractDomain(bsbm.Q4(), st)
	if err != nil {
		t.Fatal(err)
	}
	bindings := NewUniformSampler(dom, 1).Sample(16)
	// An empty WHERE clause fails plan.Compile for every binding.
	bad := *bsbm.Q4()
	bad.Where = nil
	for _, workers := range []int{1, 4} {
		if _, err := AnalyzeBindings(&bad, st, bindings, AnalyzeOptions{Parallelism: workers}); err == nil {
			t.Errorf("parallelism %d: expected error for empty template", workers)
		}
	}
}
