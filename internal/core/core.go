// Package core implements the paper's contribution: generation of query
// parameters for RDF benchmarks.
//
// Given a query template with substitution parameters and a dataset, the
// package
//
//  1. extracts the parameter domains from the data (every value that makes
//     the parameterized pattern non-empty),
//  2. analyzes candidate bindings — instantiate the template, run the
//     Cout-optimal join-ordering optimizer, record the optimal plan's
//     canonical signature and cost,
//  3. clusters the domain into classes S1…Sk such that within a class the
//     optimal plan is identical (condition a) and its Cout falls in a
//     narrow geometric cost band (condition b, relaxed from exact equality
//     to a relative tolerance ε, since exact cost equality would make
//     almost every class a singleton), while distinct classes differ in
//     plan or cost band (condition c),
//  4. offers samplers: the uniform-at-random baseline the paper argues
//     against, and stratified per-class samplers that realize the paper's
//     proposal (splitting e.g. BSBM-BI Q4 into Q4a and Q4b).
//
// The paper notes that checking condition (a) exactly "boils down to
// solving multiple NP-hard join ordering problems" and that only heuristics
// are feasible. This implementation uses exact DP join ordering per binding
// (cheap at benchmark-query sizes) and heuristic banding for costs.
package core

import (
	"fmt"
	"sort"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Domain is the set of candidate values for each parameter of a template,
// in a fixed parameter order.
type Domain struct {
	Params []sparql.Param
	Values [][]rdf.Term // Values[i] are the candidates for Params[i], sorted by Term.Compare
}

// Size returns the size of the cross-product domain.
func (d *Domain) Size() int {
	if len(d.Values) == 0 {
		return 0
	}
	n := 1
	for _, vs := range d.Values {
		n *= len(vs)
	}
	return n
}

// At returns the i-th binding of the cross-product domain in row-major
// order (last parameter varies fastest).
func (d *Domain) At(i int) sparql.Binding {
	b := make(sparql.Binding, len(d.Params))
	for k := len(d.Params) - 1; k >= 0; k-- {
		vs := d.Values[k]
		b[d.Params[k]] = vs[i%len(vs)]
		i /= len(vs)
	}
	return b
}

// ExtractDomain computes the parameter domains of tmpl against st. For a
// parameter occurring in a triple pattern, the candidates are the distinct
// values occurring in that position among triples matching the pattern's
// constant positions; a parameter occurring in several patterns gets the
// intersection. Parameters that appear only in FILTERs are rejected — their
// domain is not derivable from pattern positions.
func ExtractDomain(tmpl *sparql.Query, st *store.Store) (*Domain, error) {
	params := tmpl.Params()
	if len(params) == 0 {
		return nil, fmt.Errorf("core: template has no parameters")
	}
	d := &Domain{Params: params}
	dc := st.Dict()
	for _, prm := range params {
		var candidate []rdf.Term
		haveCandidate := false
		found := false
		for _, tp := range tmpl.Where {
			nodes := [3]sparql.Node{tp.S, tp.P, tp.O}
			for pos, n := range nodes {
				if n.Kind != sparql.NodeParam || n.Param != prm {
					continue
				}
				found = true
				// Pattern restricted to constant positions only: variables
				// and other parameters are wildcards.
				var pat store.Pattern
				missing := false
				setConst := func(x sparql.Node, slot *dict.ID) {
					if x.Kind != sparql.NodeTerm {
						return
					}
					id, ok := dc.Lookup(x.Term)
					if !ok {
						missing = true
						return
					}
					*slot = id
				}
				setConst(tp.S, &pat.S)
				setConst(tp.P, &pat.P)
				setConst(tp.O, &pat.O)
				if missing {
					// This occurrence matches nothing: intersection is empty.
					candidate = nil
					haveCandidate = true
					continue
				}
				ids := st.DistinctValues(pos, pat)
				terms := make([]rdf.Term, len(ids))
				for i, id := range ids {
					terms[i] = dc.Decode(id)
				}
				sort.Slice(terms, func(i, j int) bool { return terms[i].Compare(terms[j]) < 0 })
				if !haveCandidate {
					candidate = terms
					haveCandidate = true
				} else {
					candidate = intersectSorted(candidate, terms)
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("core: parameter %%%s occurs only in FILTER; domain not extractable", prm)
		}
		if len(candidate) == 0 {
			return nil, fmt.Errorf("core: parameter %%%s has empty domain", prm)
		}
		d.Values = append(d.Values, candidate)
	}
	return d, nil
}

func intersectSorted(a, b []rdf.Term) []rdf.Term {
	var out []rdf.Term
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		c := a[i].Compare(b[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
