package core

import (
	"fmt"
	"math/rand"

	"repro/internal/sparql"
)

// StepSampler draws bindings from a "step-shaped" distribution over the
// cross-product domain, the technique TPC-DS adopted one step beyond
// uniform sampling (Poess & Stephens, "Generating thousand benchmark
// queries in seconds", VLDB'04 — reference [10] of the paper). The domain
// is split into k contiguous strata; stratum i is drawn with weight
// w_i ∝ decay^i, and the binding is uniform within the stratum.
//
// The paper positions its contribution as generalizing this line of work
// to complex and correlated distributions; StepSampler is provided as the
// intermediate baseline between UniformSampler and the curated ClassSampler.
type StepSampler struct {
	dom    *Domain
	rng    *rand.Rand
	steps  int
	cum    []float64 // cumulative stratum weights
	bounds []int     // stratum i covers domain indices [bounds[i], bounds[i+1])
}

// NewStepSampler builds a step sampler with the given number of strata and
// per-step weight decay in (0, 1]; decay 1 degenerates to uniform.
func NewStepSampler(dom *Domain, steps int, decay float64, seed int64) (*StepSampler, error) {
	size := dom.Size()
	if steps < 1 || steps > size {
		return nil, fmt.Errorf("core: steps must be in [1, %d]", size)
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("core: decay must be in (0, 1]")
	}
	s := &StepSampler{
		dom:   dom,
		rng:   rand.New(rand.NewSource(seed)),
		steps: steps,
	}
	s.bounds = make([]int, steps+1)
	for i := 0; i <= steps; i++ {
		s.bounds[i] = i * size / steps
	}
	w := 1.0
	total := 0.0
	weights := make([]float64, steps)
	for i := range weights {
		weights[i] = w
		total += w
		w *= decay
	}
	s.cum = make([]float64, steps)
	acc := 0.0
	for i, wi := range weights {
		acc += wi / total
		s.cum[i] = acc
	}
	return s, nil
}

// Sample draws n bindings from the step distribution.
func (s *StepSampler) Sample(n int) []sparql.Binding {
	out := make([]sparql.Binding, n)
	for i := range out {
		x := s.rng.Float64()
		stratum := len(s.cum) - 1
		for j, c := range s.cum {
			if x < c {
				stratum = j
				break
			}
		}
		lo, hi := s.bounds[stratum], s.bounds[stratum+1]
		if hi <= lo {
			hi = lo + 1
		}
		out[i] = s.dom.At(lo + s.rng.Intn(hi-lo))
	}
	return out
}
