package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Reader parses N-Triples (RDF 1.1 N-Triples grammar, plus '#' comments and
// blank lines). It is a streaming parser: call Read repeatedly until io.EOF.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader returns a Reader consuming N-Triples from r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{s: s}
}

// Read returns the next triple. It returns io.EOF when the input is
// exhausted, and a *ParseError on malformed input.
func (r *Reader) Read() (Triple, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseLine(line)
		if err != nil {
			return Triple{}, &ParseError{Line: r.line, Err: err}
		}
		return t, nil
	}
	if err := r.s.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll consumes the remaining input and returns all triples.
func (r *Reader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseError describes a syntax error with its 1-based line number.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %v", e.Line, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// parseLine parses one non-empty, non-comment N-Triples statement.
func parseLine(line string) (Triple, error) {
	p := &lineParser{s: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	if s.Kind == Literal {
		return Triple{}, fmt.Errorf("subject must not be a literal")
	}
	p.skipWS()
	pr, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	if pr.Kind != IRI {
		return Triple{}, fmt.Errorf("predicate must be an IRI")
	}
	p.skipWS()
	o, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipWS()
	if !p.eat('.') {
		return Triple{}, fmt.Errorf("expected terminating '.' near offset %d", p.i)
	}
	p.skipWS()
	if p.i != len(p.s) {
		return Triple{}, fmt.Errorf("trailing content %q", p.s[p.i:])
	}
	return Triple{S: s, P: pr, O: o}, nil
}

// ParseTerm parses a single N-Triples term (<iri>, _:blank, "literal" with
// optional @lang or ^^<datatype>). Surrounding whitespace is ignored;
// trailing content is an error. It is the term syntax of queryrun's -bind
// flags and the query service's JSON bindings.
func ParseTerm(src string) (Term, error) {
	p := &lineParser{s: strings.TrimSpace(src)}
	t, err := p.term()
	if err != nil {
		return Term{}, err
	}
	p.skipWS()
	if p.i != len(p.s) {
		return Term{}, fmt.Errorf("trailing content %q after term", p.s[p.i:])
	}
	return t, nil
}

type lineParser struct {
	s string
	i int
}

func (p *lineParser) skipWS() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *lineParser) eat(c byte) bool {
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *lineParser) term() (Term, error) {
	if p.i >= len(p.s) {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q at offset %d", p.s[p.i], p.i)
	}
}

func (p *lineParser) iri() (Term, error) {
	p.i++ // '<'
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != '>' {
		// A backslash may escape '>' inside an IRI via >, but a raw
		// escaped sequence never contains '>', so scanning for '>' is safe.
		p.i++
	}
	if p.i >= len(p.s) {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	raw := p.s[start:p.i]
	p.i++ // '>'
	v, err := Unescape(raw)
	if err != nil {
		return Term{}, err
	}
	if v == "" {
		return Term{}, fmt.Errorf("empty IRI")
	}
	return NewIRI(v), nil
}

func (p *lineParser) blank() (Term, error) {
	if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
		return Term{}, fmt.Errorf("malformed blank node at offset %d", p.i)
	}
	p.i += 2
	start := p.i
	for p.i < len(p.s) && isBlankLabelChar(p.s[p.i]) {
		p.i++
	}
	if p.i == start {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	return NewBlank(p.s[start:p.i]), nil
}

func isBlankLabelChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (p *lineParser) literal() (Term, error) {
	p.i++ // '"'
	start := p.i
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case '\\':
			p.i += 2
		case '"':
			raw := p.s[start:p.i]
			p.i++
			lex, err := Unescape(raw)
			if err != nil {
				return Term{}, err
			}
			return p.literalSuffix(lex)
		default:
			p.i++
		}
	}
	return Term{}, fmt.Errorf("unterminated literal")
}

func (p *lineParser) literalSuffix(lex string) (Term, error) {
	if p.i < len(p.s) && p.s[p.i] == '@' {
		p.i++
		start := p.i
		for p.i < len(p.s) && isLangChar(p.s[p.i]) {
			p.i++
		}
		if p.i == start {
			return Term{}, fmt.Errorf("empty language tag")
		}
		return NewLangLiteral(lex, p.s[start:p.i]), nil
	}
	if strings.HasPrefix(p.s[p.i:], "^^") {
		p.i += 2
		if p.i >= len(p.s) || p.s[p.i] != '<' {
			return Term{}, fmt.Errorf("expected datatype IRI after ^^")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		if dt.Value == XSDString {
			return NewLiteral(lex), nil
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func isLangChar(c byte) bool {
	return c == '-' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Writer serializes triples as N-Triples.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter returns a Writer emitting N-Triples to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 256*1024)}
}

// Write emits one triple. Errors are sticky.
func (w *Writer) Write(t Triple) error {
	if w.err != nil {
		return w.err
	}
	if !t.Valid() {
		w.err = fmt.Errorf("ntriples: invalid triple %v", t)
		return w.err
	}
	if _, err := w.w.WriteString(t.String()); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of triples written so far.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}
