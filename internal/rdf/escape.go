package rdf

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// escapeLiteral escapes a literal lexical form for N-Triples output.
// N-Triples requires escaping of ", \, LF and CR; we additionally escape TAB
// for readability. All other characters are emitted as UTF-8.
func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeIRI escapes characters not allowed inside <...> in N-Triples.
func escapeIRI(s string) string {
	if !strings.ContainsAny(s, "<>\"{}|^`\\\x00 \n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch {
		case r == '\\':
			b.WriteString(`\\`)
		case r <= 0x20 || strings.ContainsRune("<>\"{}|^`", r):
			if r > 0xFFFF {
				fmt.Fprintf(&b, `\U%08X`, r)
			} else {
				fmt.Fprintf(&b, `\u%04X`, r)
			}
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Unescape decodes N-Triples string escapes (\t \b \n \r \f \" \' \\ \uXXXX
// \UXXXXXXXX). It returns an error on malformed escapes or invalid UTF-8 —
// RDF terms are Unicode strings, and accepting arbitrary bytes would break
// the serialization round trip. It is used by both the N-Triples reader and
// the SPARQL lexer (IRI references share this escape syntax).
func Unescape(s string) (string, error) {
	if !utf8.ValidString(s) {
		return "", fmt.Errorf("rdf: invalid UTF-8 in %q", s)
	}
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("rdf: dangling backslash at end of %q", s)
		}
		switch e := s[i+1]; e {
		case 't':
			b.WriteByte('\t')
			i += 2
		case 'b':
			b.WriteByte('\b')
			i += 2
		case 'n':
			b.WriteByte('\n')
			i += 2
		case 'r':
			b.WriteByte('\r')
			i += 2
		case 'f':
			b.WriteByte('\f')
			i += 2
		case '"':
			b.WriteByte('"')
			i += 2
		case '\'':
			b.WriteByte('\'')
			i += 2
		case '\\':
			b.WriteByte('\\')
			i += 2
		case 'u':
			r, err := hexRune(s, i+2, 4)
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
			i += 6
		case 'U':
			r, err := hexRune(s, i+2, 8)
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
			i += 10
		default:
			return "", fmt.Errorf("rdf: invalid escape \\%c in %q", e, s)
		}
	}
	return b.String(), nil
}

func hexRune(s string, start, n int) (rune, error) {
	if start+n > len(s) {
		return 0, fmt.Errorf("rdf: truncated unicode escape in %q", s)
	}
	var v rune
	for i := start; i < start+n; i++ {
		c := s[i]
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("rdf: invalid hex digit %q in unicode escape", c)
		}
		v = v<<4 | d
	}
	if !utf8.ValidRune(v) {
		return 0, fmt.Errorf("rdf: escape denotes invalid rune U+%X", v)
	}
	return v, nil
}
