package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Fatalf("IRI kind predicates wrong: %+v", iri)
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() || lit.Lang != "" || lit.Datatype != "" {
		t.Fatalf("plain literal wrong: %+v", lit)
	}
	ll := NewLangLiteral("bonjour", "fr")
	if ll.Lang != "fr" {
		t.Fatalf("lang literal wrong: %+v", ll)
	}
	tl := NewTypedLiteral("42", XSDInteger)
	if tl.Datatype != XSDInteger {
		t.Fatalf("typed literal wrong: %+v", tl)
	}
	b := NewBlank("b1")
	if !b.IsBlank() {
		t.Fatalf("blank wrong: %+v", b)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewBlank("b7"), "_:b7"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewInteger(42), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral(`say "hi"` + "\n"), `"say \"hi\"\n"`},
		{NewBoolean(true), `"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
		{NewBoolean(false), `"false"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermCompare(t *testing.T) {
	a := NewIRI("http://x/a")
	b := NewIRI("http://x/b")
	l := NewLiteral("a")
	bl := NewBlank("a")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("IRI ordering by value broken")
	}
	if a.Compare(a) != 0 {
		t.Error("Compare not reflexive")
	}
	if a.Compare(l) >= 0 {
		t.Error("IRI should sort before literal")
	}
	if l.Compare(bl) >= 0 {
		t.Error("literal should sort before blank")
	}
	if NewLangLiteral("x", "en").Compare(NewLangLiteral("x", "fr")) >= 0 {
		t.Error("lang tag must break ties")
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("o"))
	want := `<http://x/s> <http://x/p> "o" .`
	if got := tr.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestTripleValid(t *testing.T) {
	s := NewIRI("http://x/s")
	p := NewIRI("http://x/p")
	o := NewLiteral("")
	if !NewTriple(s, p, o).Valid() {
		t.Error("empty literal object should be valid")
	}
	if NewTriple(NewLiteral("s"), p, o).Valid() {
		t.Error("literal subject should be invalid")
	}
	if NewTriple(s, NewBlank("p"), o).Valid() {
		t.Error("blank predicate should be invalid")
	}
	if NewTriple(Term{}, p, o).Valid() {
		t.Error("empty subject should be invalid")
	}
	if NewTriple(s, p, NewIRI("")).Valid() {
		t.Error("empty IRI object should be invalid")
	}
}

// Property: Key is injective over distinct structured terms (checked on
// random literal content).
func TestTermKeyInjective(t *testing.T) {
	f := func(a, b string, langA, langB bool) bool {
		ta := NewLiteral(a)
		tb := NewLiteral(b)
		if langA {
			ta = NewLangLiteral(a, "en")
		}
		if langB {
			tb = NewLangLiteral(b, "en")
		}
		if ta == tb {
			return ta.Key() == tb.Key()
		}
		return ta.Key() != tb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEscapeUnescapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !isValidUTF8ForTest(s) {
			return true
		}
		got, err := Unescape(escapeLiteral(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func isValidUTF8ForTest(s string) bool {
	return strings.ToValidUTF8(s, "") == s
}
