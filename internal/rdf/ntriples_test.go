package rdf

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestReaderBasic(t *testing.T) {
	input := `
# a comment
<http://x/s> <http://x/p> <http://x/o> .
<http://x/s> <http://x/p> "lit" .

<http://x/s> <http://x/p> "lit"@en .
<http://x/s> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://x/p> _:b2 .
`
	r := NewReader(strings.NewReader(input))
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d triples, want 5", len(got))
	}
	if got[0].O != NewIRI("http://x/o") {
		t.Errorf("triple 0 object = %v", got[0].O)
	}
	if got[2].O != NewLangLiteral("lit", "en") {
		t.Errorf("triple 2 object = %v", got[2].O)
	}
	if got[3].O != NewInteger(5) {
		t.Errorf("triple 3 object = %v", got[3].O)
	}
	if got[4].S != NewBlank("b1") || got[4].O != NewBlank("b2") {
		t.Errorf("triple 4 = %v", got[4])
	}
}

func TestReaderXSDStringNormalized(t *testing.T) {
	// An explicit ^^xsd:string datatype must normalize to a plain literal so
	// that equal terms compare equal.
	in := `<http://x/s> <http://x/p> "v"^^<http://www.w3.org/2001/XMLSchema#string> .`
	r := NewReader(strings.NewReader(in))
	tr, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if tr.O != NewLiteral("v") {
		t.Fatalf("got %+v, want plain literal", tr.O)
	}
}

func TestReaderErrors(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p> <http://x/o>`,          // missing dot
		`"lit" <http://x/p> <http://x/o> .`,               // literal subject
		`<http://x/s> _:b <http://x/o> .`,                 // blank predicate
		`<http://x/s> <http://x/p> "unterminated .`,       // unterminated literal
		`<http://x/s> <http://x/p> <http://x/o> . extra`,  // trailing garbage
		`<http://x/s> <http://x/p .`,                      // unterminated IRI
		`<http://x/s> <http://x/p> "v"@ .`,                // empty lang
		`<http://x/s> <http://x/p> "v"^^"notiri" .`,       // bad datatype
		`<http://x/s> <http://x/p> "bad \q escape" .`,     // invalid escape
		`<> <http://x/p> <http://x/o> .`,                  // empty IRI
		`_: <http://x/p> <http://x/o> .`,                  // empty blank label
		`<http://x/s> <http://x/p> "v"^^<dt> . trailing.`, // trailing
	}
	for _, in := range bad {
		r := NewReader(strings.NewReader(in))
		if _, err := r.Read(); err == nil || err == io.EOF {
			t.Errorf("input %q: expected parse error, got %v", in, err)
		}
	}
}

func TestParseErrorLineNumber(t *testing.T) {
	in := "<http://x/s> <http://x/p> <http://x/o> .\nbogus line\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *ParseError, got %T %v", err, err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
	if pe.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	bad := NewTriple(NewLiteral("s"), NewIRI("http://x/p"), NewLiteral("o"))
	if err := w.Write(bad); err == nil {
		t.Fatal("expected error for invalid triple")
	}
	// sticky error
	good := NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("o"))
	if err := w.Write(good); err == nil {
		t.Fatal("expected sticky error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	triples := []Triple{
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o")),
		NewTriple(NewBlank("b0"), NewIRI("http://x/p"), NewLiteral("plain")),
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLangLiteral("héllo wörld", "de-AT")),
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewTypedLiteral("3.14", XSDDouble)),
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("tricky \"quotes\"\nand\tlines\\")),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, tr := range triples {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(triples) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(triples))
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(triples) {
		t.Fatalf("round trip lost triples: %d vs %d", len(got), len(triples))
	}
	for i := range triples {
		if got[i] != triples[i] {
			t.Errorf("triple %d: got %+v want %+v", i, got[i], triples[i])
		}
	}
}

// Property: any literal value written is read back identically.
func TestRoundTripPropertyLiterals(t *testing.T) {
	f := func(val string) bool {
		if !isValidUTF8ForTest(val) {
			return true
		}
		tr := NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral(val))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(tr); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).Read()
		return err == nil && got == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
