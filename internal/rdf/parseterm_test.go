package rdf

import "testing"

func TestParseTerm(t *testing.T) {
	cases := []struct {
		src  string
		want Term
	}{
		{"<http://x/a>", NewIRI("http://x/a")},
		{"  <http://x/a>\t", NewIRI("http://x/a")},
		{`"hello"`, NewLiteral("hello")},
		{`"hi"@en`, NewLangLiteral("hi", "en")},
		{`"7"^^<http://www.w3.org/2001/XMLSchema#integer>`, NewInteger(7)},
		{"_:b0", NewBlank("b0")},
	}
	for _, c := range cases {
		got, err := ParseTerm(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if !got.Equal(c.want) {
			t.Fatalf("%q: got %v want %v", c.src, got, c.want)
		}
	}
	for _, bad := range []string{"", "http://x/a", "<http://x/a> trailing", `"unterminated`, "<a> <b>"} {
		if _, err := ParseTerm(bad); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}
