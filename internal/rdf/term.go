// Package rdf provides the RDF data model used throughout the repository:
// terms (IRIs, literals, blank nodes), triples, and an N-Triples
// reader/writer. It is deliberately small — just enough W3C RDF 1.1 for
// benchmark datasets — but strict about syntax so that generated datasets
// round-trip exactly.
package rdf

import (
	"fmt"
	"strings"
)

// Kind discriminates the three RDF term kinds.
type Kind uint8

const (
	// IRI is an absolute IRI reference, e.g. <http://example.org/p1>.
	IRI Kind = iota
	// Literal is an RDF literal with optional language tag or datatype.
	Literal
	// Blank is a blank node, e.g. _:b42.
	Blank
)

// String returns the kind name for debugging.
func (k Kind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Common XSD datatype IRIs.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate     = "http://www.w3.org/2001/XMLSchema#date"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	// RDFType is the rdf:type predicate IRI.
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
)

// Term is a single RDF term. The zero value is the empty IRI, which is not a
// valid term; use the constructors.
//
// Value holds the IRI string (without angle brackets), the literal lexical
// form, or the blank node label (without the "_:" prefix). Lang and Datatype
// are only meaningful for literals; at most one of them is set, and a plain
// literal has both empty (its effective datatype is xsd:string).
type Term struct {
	Kind     Kind
	Value    string
	Lang     string
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank-node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewLiteral returns a plain literal (effective datatype xsd:string).
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return NewTypedLiteral(fmt.Sprintf("%d", v), XSDInteger)
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return NewTypedLiteral(fmt.Sprintf("%g", v), XSDDouble)
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	if v {
		return NewTypedLiteral("true", XSDBoolean)
	}
	return NewTypedLiteral("false", XSDBoolean)
}

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// Equal reports whether two terms are identical (same kind, value, language
// tag and datatype).
func (t Term) Equal(o Term) bool { return t == o }

// Compare orders terms: IRIs < Literals < Blanks, then by value, datatype
// and language. It returns -1, 0 or +1. The order is total and is used by
// the dictionary and tests; it is not SPARQL ORDER BY semantics.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		if t.Kind < o.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, o.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, o.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, o.Lang)
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t Term) write(b *strings.Builder) {
	switch t.Kind {
	case IRI:
		b.WriteByte('<')
		b.WriteString(escapeIRI(t.Value))
		b.WriteByte('>')
	case Blank:
		b.WriteString("_:")
		b.WriteString(t.Value)
	case Literal:
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		switch {
		case t.Lang != "":
			b.WriteByte('@')
			b.WriteString(t.Lang)
		case t.Datatype != "" && t.Datatype != XSDString:
			b.WriteString("^^<")
			b.WriteString(escapeIRI(t.Datatype))
			b.WriteByte('>')
		}
	}
}

// Key returns a canonical string key for the term, unique across kinds. It
// is the N-Triples rendering, which is injective for valid terms.
func (t Term) Key() string { return t.String() }

// Triple is a single RDF statement.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as an N-Triples line (without newline).
func (t Triple) String() string {
	var b strings.Builder
	t.S.write(&b)
	b.WriteByte(' ')
	t.P.write(&b)
	b.WriteByte(' ')
	t.O.write(&b)
	b.WriteString(" .")
	return b.String()
}

// Valid performs a shallow well-formedness check: subject is IRI or blank,
// predicate is IRI, object is any term, and no empty values.
func (t Triple) Valid() bool {
	if t.S.Value == "" || t.P.Value == "" {
		return false
	}
	if t.S.Kind == Literal || t.P.Kind != IRI {
		return false
	}
	if t.O.Kind != Literal && t.O.Value == "" {
		return false
	}
	return true
}
