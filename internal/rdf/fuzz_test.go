package rdf

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzReader checks the N-Triples parser on arbitrary input: it must never
// panic, and every successfully parsed triple must round-trip through the
// writer byte-identically (semantic fixpoint).
func FuzzReader(f *testing.F) {
	seeds := []string{
		`<http://x/s> <http://x/p> <http://x/o> .`,
		`<http://x/s> <http://x/p> "lit" .`,
		`<http://x/s> <http://x/p> "lit"@en-GB .`,
		`<http://x/s> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`_:b1 <http://x/p> _:b2 .`,
		`# comment` + "\n" + `<http://x/s> <http://x/p> "a\"b\\c\nd" .`,
		`<http://x/é> <http://x/p> "\U0001F600" .`,
		"bogus line",
		`<http://x/s> <http://x/p> "unterminated`,
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		r := NewReader(strings.NewReader(input))
		var parsed []Triple
		for {
			tr, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed input is fine; panics are not
			}
			parsed = append(parsed, tr)
			if len(parsed) > 1000 {
				break
			}
		}
		if len(parsed) == 0 {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, tr := range parsed {
			if err := w.Write(tr); err != nil {
				t.Fatalf("parsed triple failed to serialize: %v (%+v)", err, tr)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("serialized output failed to re-parse: %v\n%s", err, buf.String())
		}
		if len(got) != len(parsed) {
			t.Fatalf("round trip changed triple count: %d vs %d", len(got), len(parsed))
		}
		for i := range parsed {
			if got[i] != parsed[i] {
				t.Fatalf("triple %d changed: %+v vs %+v", i, got[i], parsed[i])
			}
		}
	})
}

// FuzzParseTerm checks the single-term parser (the syntax of queryrun's
// -bind flags and the service's JSON bindings): no panics, and every
// successfully parsed term must render (String) to text that re-parses to
// the identical term.
func FuzzParseTerm(f *testing.F) {
	seeds := []string{
		`<http://x/s>`,
		`_:b1`,
		`"lit"`,
		`"lit"@en-GB`,
		`"5"^^<http://www.w3.org/2001/XMLSchema#integer>`,
		`"esc\"d\né"`,
		`  <http://x/padded>  `,
		`<http://x/s> trailing`,
		`"unterminated`,
		`@en`,
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		term, err := ParseTerm(src)
		if err != nil {
			return
		}
		rendered := term.String()
		again, err := ParseTerm(rendered)
		if err != nil {
			t.Fatalf("rendering of valid term does not re-parse: %v\nsource: %q\nrendered: %q", err, src, rendered)
		}
		if again != term {
			t.Fatalf("term round trip changed: %+v vs %+v (source %q)", term, again, src)
		}
	})
}
