package benchfmt

import (
	"strings"
	"testing"
)

const rawOut = `goos: linux
goarch: amd64
pkg: repro
BenchmarkExecParallel1-8 	       3	   400000 ns/op	       120.0 rows	      9000 work
BenchmarkExecParallel8-8 	       3	   100000 ns/op	       120.0 rows	      9000 work
PASS
`

const jsonOut = `{"Time":"2026-01-01T00:00:00Z","Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"BenchmarkExecParallel1-8 \t       2\t   350000 ns/op\t       120.0 rows\t      9000 work\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkLeapfrogStar5-8 \t"}
{"Action":"output","Package":"repro","Output":"       1\t   150000 ns/op\t        40.00 cout-leapfrog\t      7360 cout-binary\n"}
{"Action":"output","Package":"repro","Output":"ok  \trepro\t2.1s\n"}
{"Action":"pass","Package":"repro"}
`

// TestParseRawAndJSON: both the plain -bench text and the test2json
// stream yield the same structured results, with the -GOMAXPROCS suffix
// stripped from names.
func TestParseRawAndJSON(t *testing.T) {
	raw, err := Parse([]byte(rawOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 2 {
		t.Fatalf("raw results = %d, want 2: %v", len(raw), raw)
	}
	r, ok := raw["BenchmarkExecParallel1"]
	if !ok {
		t.Fatalf("suffix not stripped: %v", raw)
	}
	if r.Iters != 3 || r.Metrics["ns/op"] != 400000 || r.Metrics["work"] != 9000 {
		t.Fatalf("bad parse: %+v", r)
	}

	js, err := Parse([]byte(jsonOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 2 {
		t.Fatalf("json results = %d, want 2: %v", len(js), js)
	}
	if js["BenchmarkLeapfrogStar5"].Metrics["cout-binary"] != 7360 {
		t.Fatalf("custom metric lost: %+v", js["BenchmarkLeapfrogStar5"])
	}
}

// TestDiff: deltas, added and removed benchmarks all render; an empty
// baseline degrades to a listing instead of an error.
func TestDiff(t *testing.T) {
	old, _ := Parse([]byte(rawOut))
	cur, _ := Parse([]byte(jsonOut))
	out := Diff(old, cur, "ns/op")
	for _, want := range []string{
		"BenchmarkExecParallel1", "-12.5%", // 400000 -> 350000
		"BenchmarkExecParallel8", "removed",
		"BenchmarkLeapfrogStar5", "added",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	if got := Diff(Set{}, cur, "ns/op"); !strings.Contains(got, "added") {
		t.Fatalf("empty baseline should list everything as added:\n%s", got)
	}
	if Diff(old, Set{}, "ns/op") != "" {
		t.Fatal("empty current set should render nothing")
	}
	// Custom metrics diff too.
	if out := Diff(cur, cur, "cout-binary"); !strings.Contains(out, "7360") {
		t.Fatalf("custom-metric diff missing value:\n%s", out)
	}
}
