// Package benchfmt parses Go benchmark results out of the CI bench
// artifact — a test2json stream whose "output" events carry the textual
// `BenchmarkName  N  value unit [value unit ...]` lines — and formats
// per-benchmark deltas between two artifacts. Plain `go test -bench`
// text output is accepted too, so locally produced files diff the same
// way as CI artifacts.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements: iteration count plus every
// reported metric (ns/op, B/op and any b.ReportMetric custom unit).
type Result struct {
	Name    string
	Iters   int
	Metrics map[string]float64
}

// Set maps benchmark name (GOMAXPROCS suffix stripped) to its result;
// repeated runs of one benchmark keep the last measurement.
type Set map[string]Result

// event is the subset of the test2json record shape we need.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// Parse extracts benchmark results from data, which may be a test2json
// stream, raw `go test -bench` output, or a mix. test2json splits one
// benchmark result across several "output" events (the name fragment has
// no trailing newline), so the stream's output text is reassembled before
// being split into lines.
func Parse(data []byte) (Set, error) {
	var text strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimRight(line, "\r")
		if strings.HasPrefix(strings.TrimSpace(trimmed), "{") {
			var ev event
			if err := json.Unmarshal([]byte(trimmed), &ev); err == nil {
				if ev.Action == "output" {
					text.WriteString(ev.Output)
				}
				continue
			}
		}
		text.WriteString(trimmed)
		text.WriteString("\n")
	}
	set := Set{}
	for _, line := range strings.Split(text.String(), "\n") {
		if r, ok := parseLine(line); ok {
			set[r.Name] = r
		}
	}
	return set, nil
}

// parseLine parses one `BenchmarkName  N  value unit ...` line. Lines
// that are not benchmark results (PASS, goos:, --- FAIL, …) return ok
// false.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so artifacts from boxes with different
	// core counts still line up.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// Diff renders a per-benchmark old→new table for the chosen metric.
// Benchmarks present on only one side are reported as added/removed; an
// empty old set degrades to a plain listing of the new results. Returns
// "" when cur has no results at all.
func Diff(old, cur Set, metric string) string {
	if len(cur) == 0 {
		return ""
	}
	names := make([]string, 0, len(cur)+len(old))
	for n := range cur {
		names = append(names, n)
	}
	for n := range old {
		if _, ok := cur[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %14s %14s %9s\n", "benchmark ("+metric+")", "old", "new", "delta")
	for _, n := range names {
		o, hasOld := old[n]
		c, hasCur := cur[n]
		switch {
		case !hasCur:
			fmt.Fprintf(&b, "%-34s %14s %14s %9s\n", n, format(o.Metrics[metric]), "-", "removed")
		case !hasOld:
			fmt.Fprintf(&b, "%-34s %14s %14s %9s\n", n, "-", format(c.Metrics[metric]), "added")
		default:
			ov, oOK := o.Metrics[metric]
			cv, cOK := c.Metrics[metric]
			if !oOK || !cOK {
				fmt.Fprintf(&b, "%-34s %14s %14s %9s\n", n, "-", "-", "n/a")
				continue
			}
			delta := "0.0%"
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (cv-ov)/ov*100)
			}
			fmt.Fprintf(&b, "%-34s %14s %14s %9s\n", n, format(ov), format(cv), delta)
		}
	}
	return b.String()
}

// Delta is one benchmark's old→new change for a metric, for programmatic
// regression gating (cmd/benchdiff -threshold).
type Delta struct {
	Name    string
	Old     float64
	New     float64
	Percent float64 // (new-old)/old * 100; 0 when old is 0
}

// Deltas computes per-benchmark deltas for the chosen metric over the
// benchmarks present with that metric on both sides (added/removed
// benchmarks have no delta to gate on), sorted by name.
func Deltas(old, cur Set, metric string) []Delta {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Delta
	for _, n := range names {
		o, ok := old[n]
		if !ok {
			continue
		}
		ov, oOK := o.Metrics[metric]
		cv, cOK := cur[n].Metrics[metric]
		if !oOK || !cOK {
			continue
		}
		d := Delta{Name: n, Old: ov, New: cv}
		if ov != 0 {
			d.Percent = (cv - ov) / ov * 100
		}
		out = append(out, d)
	}
	return out
}

// format prints a metric value compactly (integers without a mantissa).
func format(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
