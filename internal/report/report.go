// Package report renders aligned ASCII tables and experiment records for
// terminal output and for EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; missing cells render empty, extra cells are kept.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends a row of formatted cells; each argument is rendered with %v
// unless it is a float64, which is rendered compactly.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with 3 significant digits, large values with thousands grouping
// avoided (plain %.3g).
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

// FormatDuration renders milliseconds-as-float the way the paper's tables
// do (e.g. "0.14 s", "354 ms").
func FormatDuration(ms float64) string {
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.2f s", ms/1000)
	case ms >= 1:
		return fmt.Sprintf("%.0f ms", ms)
	default:
		return fmt.Sprintf("%.2f ms", ms)
	}
}
