package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "Time", "Group 1", "Group 2")
	tb.Add("q10", "0.14 s", "0.07 s")
	tb.Add("Median", "1.33 s", "0.75 s")
	out := tb.String()
	if !strings.Contains(out, "My Title") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Median") || !strings.Contains(out, "0.75 s") {
		t.Error("cells missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+1+1+2 { // title, headers, separator, 2 rows
		t.Fatalf("line count = %d: %q", len(lines), out)
	}
	// Alignment: all rows equal width columns — check header and first row
	// start the second column at the same offset.
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "Group 1") != strings.Index(row, "0.07 s")-len("0.14 s  ")+len("0.14 s  ") && false {
		t.Log("alignment heuristic skipped")
	}
	_ = hdr
	_ = row
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.Add("1", "2")
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Fatalf("markdown wrong:\n%s", md)
	}
	if !strings.Contains(md, "**T**") {
		t.Error("title missing in markdown")
	}
}

func TestAddf(t *testing.T) {
	tb := NewTable("", "x", "y", "z")
	tb.Addf(3.14159, 42, "str")
	if tb.Rows[0][0] != "3.14" {
		t.Errorf("float cell = %q", tb.Rows[0][0])
	}
	if tb.Rows[0][1] != "42" {
		t.Errorf("int cell = %q", tb.Rows[0][1])
	}
	if tb.Rows[0][2] != "str" {
		t.Errorf("string cell = %q", tb.Rows[0][2])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		42:      "42",
		3.14159: "3.14",
		0.001:   "0.001",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[float64]string{
		1800:  "1.80 s",
		354:   "354 ms",
		0.059: "0.06 ms",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRaggedRows(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("1", "2", "3") // extra cells preserved
	tb.Add()              // empty row
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Fatal("extra cell lost")
	}
}
