package repro

// Tracing-overhead benchmarks. BenchmarkExecTraceOff is the plain
// streaming run of the shared BSBM Q4 binding; BenchmarkExecTraceOn is
// the same execution with a span collector attached. Their delta in the
// bench artifact is the measured cost of EXPLAIN ANALYZE tracing; the
// Off/baseline pair must stay indistinguishable from the historical
// BenchmarkExecStreaming numbers, which is what cmd/benchdiff -threshold
// gates in CI.

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/obs"
)

// BenchmarkExecTraceOff times the disabled path: options name no
// collector, so the engine builds the exact pre-trace operator tree.
func BenchmarkExecTraceOff(b *testing.B) {
	benchExecQ4Engine(b, exec.Options{Mode: exec.Streaming})
}

// BenchmarkExecTraceOn times the same run with per-operator span capture,
// putting the instrumentation cost on record in the bench artifact.
func BenchmarkExecTraceOn(b *testing.B) {
	benchExecQ4Engine(b, exec.Options{Mode: exec.Streaming, Trace: &obs.Capture{}})
}
