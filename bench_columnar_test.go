package repro

// Columnar-engine and worst-case-optimal-join benchmarks.
//
// BenchmarkColumnarFilter times the branch-reduced filter kernel over a
// dense integer column. BenchmarkLeapfrogStar3/5 put the PR's acceptance
// claim in the bench artifact: on star BGPs whose binary plans must
// materialize a large pairwise intermediate, the leapfrog triejoin's
// measured Cout/Work are asymptotically smaller — reported as custom
// metrics so the single-core CI box verifies the advantage without
// trusting wall clock. BenchmarkExecColumnar1/2/8 mirror the
// BenchmarkExecParallel family on the columnar engine; rows and
// accounting are bit-identical across the three.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bsbm"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// benchRunQuery hoists parse+compile+optimize and returns a closure that
// executes the plan with the given options (the part the benchmarks time).
func benchRunQuery(b *testing.B, st *store.Store, src string, opts exec.Options) func() *exec.Result {
	b.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	c, err := plan.Compile(q, st)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		b.Fatal(err)
	}
	return func() *exec.Result {
		res, err := exec.Run(c, p, st, opts)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
}

// BenchmarkColumnarFilter times the columnar filter kernel: one scan
// feeding two range predicates over a dense integer column, where the
// second filter reuses the selection vector the first one refined.
func BenchmarkColumnarFilter(b *testing.B) {
	const n = 20000
	sb := store.NewBuilder()
	val := rdf.NewIRI("http://x/value")
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://x/item%05d", i))
		if err := sb.Add(rdf.NewTriple(s, val, rdf.NewInteger(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
	st := sb.Build()
	src := `SELECT * WHERE { ?s <http://x/value> ?x . FILTER(?x >= 5000) FILTER(?x < 15000) }`
	run := benchRunQuery(b, st, src, exec.Options{Mode: exec.Columnar})
	b.ResetTimer()
	var res *exec.Result
	for i := 0; i < b.N; i++ {
		res = run()
	}
	b.ReportMetric(float64(len(res.Rows)), "rows")
	b.ReportMetric(float64(res.Kernels.FilterRows), "filter-rows")
	b.ReportMetric(float64(res.Kernels.Batches), "batches")
}

// buildBenchStarStore builds a store where every binary join order over a
// k-pattern star materializes a large intermediate: k classes of n hubs
// each carry all but one of the k predicates (so every proper subset of
// patterns has >= n matching hubs), while only nFull hubs carry all k.
func buildBenchStarStore(b *testing.B, k, n, nFull int) *store.Store {
	b.Helper()
	sb := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		if err := sb.Add(rdf.NewTriple(s, p, o)); err != nil {
			b.Fatal(err)
		}
	}
	for class := 0; class < k; class++ {
		for i := 0; i < n; i++ {
			h := rdf.NewIRI(fmt.Sprintf("http://x/hub%d-%05d", class, i))
			for pi := 0; pi < k; pi++ {
				if pi == class {
					continue // each class misses one predicate
				}
				add(h, rdf.NewIRI(fmt.Sprintf("http://x/p%d", pi)),
					rdf.NewIRI(fmt.Sprintf("http://x/leaf%d-%d-%05d", pi, class, i)))
			}
		}
	}
	for i := 0; i < nFull; i++ {
		h := rdf.NewIRI(fmt.Sprintf("http://x/full%05d", i))
		for pi := 0; pi < k; pi++ {
			add(h, rdf.NewIRI(fmt.Sprintf("http://x/p%d", pi)),
				rdf.NewIRI(fmt.Sprintf("http://x/fleaf%d-%05d", pi, i)))
		}
	}
	return sb.Build()
}

// starQuerySrc returns a k-pattern star BGP on one hub variable.
func starQuerySrc(k int) string {
	src := "SELECT * WHERE {\n"
	for pi := 0; pi < k; pi++ {
		src += fmt.Sprintf("  ?h <http://x/p%d> ?v%d .\n", pi, pi)
	}
	return src + "}"
}

// benchLeapfrogStar times the k-pattern star under the leapfrog triejoin
// and reports its Cout/Work next to the binary-join plan's, measured once
// outside the timed loop. The acceptance claim is cout-leapfrog ≪
// cout-binary (the triejoin intersects all k hub sets at trie level 0 and
// never materializes a pairwise intermediate), which the committed bench
// artifact records as counters rather than wall clock.
func benchLeapfrogStar(b *testing.B, k int) {
	st := buildBenchStarStore(b, k, 1200, 40)
	src := starQuerySrc(k)
	binary := benchRunQuery(b, st, src, exec.Options{})()
	run := benchRunQuery(b, st, src, exec.Options{Mode: exec.Columnar, Leapfrog: true})
	b.ResetTimer()
	var res *exec.Result
	for i := 0; i < b.N; i++ {
		res = run()
	}
	if len(res.Rows) != len(binary.Rows) {
		b.Fatalf("leapfrog rows = %d, binary rows = %d", len(res.Rows), len(binary.Rows))
	}
	if res.Cout*10 >= binary.Cout || res.Work*10 >= binary.Work {
		b.Fatalf("no asymptotic advantage: leapfrog cout=%v work=%v vs binary cout=%v work=%v",
			res.Cout, res.Work, binary.Cout, binary.Work)
	}
	b.ReportMetric(float64(len(res.Rows)), "rows")
	b.ReportMetric(res.Cout, "cout-leapfrog")
	b.ReportMetric(binary.Cout, "cout-binary")
	b.ReportMetric(res.Work, "work-leapfrog")
	b.ReportMetric(binary.Work, "work-binary")
	b.ReportMetric(float64(res.Kernels.LeapfrogSeeks), "trie-seeks")
}

// BenchmarkLeapfrogStar3 runs the three-pattern star join.
func BenchmarkLeapfrogStar3(b *testing.B) { benchLeapfrogStar(b, 3) }

// BenchmarkLeapfrogStar5 runs the five-pattern star join — the acceptance
// benchmark: every binary order materializes a >= 1200-row intermediate
// while the triejoin emits the 40 results directly.
func BenchmarkLeapfrogStar5(b *testing.B) { benchLeapfrogStar(b, 5) }

// benchExecColumnar times plan execution of the same broad BSBM Q3
// drill-down as benchExecParallel, but on the columnar engine. Rows and
// Work/Cout/Scanned are bit-identical to the streaming family and across
// the 1/2/8 parallelism settings — only wall clock changes.
func benchExecColumnar(b *testing.B, par int) {
	st, binding := benchParallelSetup(b)
	bound, err := bsbm.Q3().Bind(binding)
	if err != nil {
		b.Fatal(err)
	}
	c, err := plan.Compile(bound, st)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		b.Fatal(err)
	}
	opts := exec.Options{Mode: exec.Columnar, Parallelism: par}
	b.ResetTimer()
	var res *exec.Result
	for i := 0; i < b.N; i++ {
		res, err = exec.Run(c, p, st, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Rows)), "rows")
	b.ReportMetric(res.Work, "work")
	b.ReportMetric(float64(res.Kernels.Batches), "batches")
	b.ReportMetric(float64(res.Morsels), "morsels")
}

// BenchmarkExecColumnar1 is the serial columnar baseline.
func BenchmarkExecColumnar1(b *testing.B) { benchExecColumnar(b, 1) }

// BenchmarkExecColumnar2 runs the columnar pipeline on up to 2 workers.
func BenchmarkExecColumnar2(b *testing.B) { benchExecColumnar(b, 2) }

// BenchmarkExecColumnar8 runs the columnar pipeline on up to 8 workers.
func BenchmarkExecColumnar8(b *testing.B) { benchExecColumnar(b, 8) }

// BenchmarkExecColumnarMapped runs the serial columnar drill-down over an
// mmap-style v4-backed store instead of heap indexes: same plan, same rows
// and accounting as BenchmarkExecColumnar1, with scans going through the
// bounds-checked mapped TripleSource. The gap between the two is the cost
// of serving the hot path straight from a snapshot file.
func BenchmarkExecColumnarMapped(b *testing.B) {
	heap, binding := benchParallelSetup(b)
	var buf bytes.Buffer
	if err := heap.WriteSnapshotVersion(&buf, 4); err != nil {
		b.Fatal(err)
	}
	st, err := store.OpenMappedBytes(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	if st.Backend() != "mapped" {
		b.Fatalf("backend = %q, want mapped", st.Backend())
	}
	bound, err := bsbm.Q3().Bind(binding)
	if err != nil {
		b.Fatal(err)
	}
	c, err := plan.Compile(bound, st)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		b.Fatal(err)
	}
	opts := exec.Options{Mode: exec.Columnar}
	b.ResetTimer()
	var res *exec.Result
	for i := 0; i < b.N; i++ {
		res, err = exec.Run(c, p, st, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Rows)), "rows")
	b.ReportMetric(res.Work, "work")
	b.ReportMetric(float64(res.Kernels.Batches), "batches")
	b.ReportMetric(float64(st.MappedBytes()), "mapped-bytes")
}
